use crate::expansion::{ExpansionConfig, Phase};
use crate::hardware::{StepEvent, TestMemory, UpDownCounter};
use crate::{ExpandError, TestSequence, TestVector};

/// The control FSM sequencing the eight expansion phases.
///
/// State: the current phase index (3 bits in hardware), the repetition
/// counter, and the address counter. Each clock it emits the current
/// control word (phase settings + address) and advances: address counter
/// first; on wrap, the repetition counter; on the last repetition, the
/// phase register. After phase 7 completes the FSM is done.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpanderFsm {
    phases: [Phase; 8],
    len: usize,
    phase_idx: usize,
    rep: usize,
    addr: UpDownCounter,
    done: bool,
}

impl ExpanderFsm {
    /// Creates an FSM for a loaded sequence of `len` words and repetition
    /// count from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn new(config: ExpansionConfig, len: usize) -> Self {
        assert!(len > 0, "cannot expand an empty memory");
        let phases = config.phases();
        let mut addr = UpDownCounter::new(len);
        if phases[0].reverse {
            addr.set(len - 1);
        }
        ExpanderFsm { phases, len, phase_idx: 0, rep: 0, addr, done: false }
    }

    /// The current phase settings.
    #[must_use]
    pub fn phase(&self) -> Phase {
        self.phases[self.phase_idx]
    }

    /// The current phase index (0..8).
    #[must_use]
    pub fn phase_index(&self) -> usize {
        self.phase_idx
    }

    /// The current memory address.
    #[must_use]
    pub fn address(&self) -> usize {
        self.addr.value()
    }

    /// Whether the full expansion has been emitted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Total number of clocks the FSM will run: `8·n·len`.
    #[must_use]
    pub fn total_cycles(&self) -> usize {
        self.phases.iter().map(|p| p.reps * self.len).sum()
    }

    /// Advances one clock. Returns `false` once done.
    pub fn advance(&mut self) -> bool {
        if self.done {
            return false;
        }
        let wrapped = if self.phase().reverse {
            self.addr.step_down() == StepEvent::Wrapped
        } else {
            self.addr.step_up() == StepEvent::Wrapped
        };
        if wrapped {
            self.rep += 1;
            if self.rep == self.phase().reps {
                self.rep = 0;
                self.phase_idx += 1;
                if self.phase_idx == self.phases.len() {
                    self.done = true;
                    return false;
                }
                // Preset the counter for the new walk direction.
                let start = if self.phase().reverse { self.len - 1 } else { 0 };
                self.addr.set(start);
            }
        }
        true
    }
}

/// Cycle-accurate model of the complete on-chip expander.
///
/// Load a subsequence with [`load`](Self::load), then call
/// [`clock`](Self::clock) once per test clock: each call returns the next
/// vector of `Sexp` (memory word routed through the shift and complement
/// multiplexers). The iterator interface drains the remaining stream.
///
/// # Example
///
/// ```
/// use bist_expand::expansion::ExpansionConfig;
/// use bist_expand::hardware::OnChipExpander;
/// use bist_expand::TestSequence;
///
/// let s: TestSequence = "000 110".parse()?;
/// let cfg = ExpansionConfig::new(2)?;
/// let mut hw = OnChipExpander::new(s.len(), s.width(), cfg);
/// hw.load(&s)?;
/// let stream: TestSequence = hw.run()?;
/// assert_eq!(stream, cfg.expand(&s));   // bit-identical to software
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct OnChipExpander {
    memory: TestMemory,
    config: ExpansionConfig,
    fsm: Option<ExpanderFsm>,
}

impl OnChipExpander {
    /// Creates an expander with a memory of `depth` words × `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` or `width` is zero.
    #[must_use]
    pub fn new(depth: usize, width: usize, config: ExpansionConfig) -> Self {
        OnChipExpander { memory: TestMemory::new(depth, width), config, fsm: None }
    }

    /// Loads a subsequence and resets the FSM, ready to stream its `Sexp`.
    ///
    /// # Errors
    ///
    /// Propagates memory loading errors (width mismatch, overflow).
    pub fn load(&mut self, s: &TestSequence) -> Result<(), ExpandError> {
        self.memory.load(s)?;
        self.fsm = Some(ExpanderFsm::new(self.config, s.len()));
        Ok(())
    }

    /// The memory model (for sizing/cost queries).
    #[must_use]
    pub fn memory(&self) -> &TestMemory {
        &self.memory
    }

    /// Produces the vector for the current clock and advances the FSM.
    /// Returns `None` when the expansion is complete or nothing is loaded.
    pub fn clock(&mut self) -> Option<TestVector> {
        let fsm = self.fsm.as_mut()?;
        if fsm.is_done() {
            return None;
        }
        let phase = fsm.phase();
        let word = self.memory.read(fsm.address());
        let out = phase.transform(word);
        fsm.advance();
        Some(out)
    }

    /// Drains the whole expansion into a sequence.
    ///
    /// # Errors
    ///
    /// [`ExpandError::Empty`] if nothing is loaded.
    pub fn run(&mut self) -> Result<TestSequence, ExpandError> {
        if self.fsm.is_none() {
            return Err(ExpandError::Empty);
        }
        let mut out = TestSequence::new(self.memory.width());
        while let Some(v) = self.clock() {
            out.push(v).expect("expander output width is fixed");
        }
        Ok(out)
    }

    /// Clocks remaining until the current expansion finishes (0 if idle).
    #[must_use]
    pub fn remaining_cycles(&self) -> usize {
        match &self.fsm {
            None => 0,
            Some(f) if f.is_done() => 0,
            Some(f) => {
                let per_walk = f.len;
                let done_in_phase = f.rep * per_walk
                    + if f.phase().reverse { f.len - 1 - f.address() } else { f.address() };
                let done_before: usize =
                    f.phases[..f.phase_index()].iter().map(|p| p.reps * per_walk).sum();
                f.total_cycles() - done_before - done_in_phase
            }
        }
    }
}

impl Iterator for OnChipExpander {
    type Item = TestVector;

    fn next(&mut self) -> Option<TestVector> {
        self.clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    fn run_hw(s: &str, n: usize) -> (TestSequence, TestSequence) {
        let s = seq(s);
        let cfg = ExpansionConfig::new(n).unwrap();
        let mut hw = OnChipExpander::new(s.len(), s.width(), cfg);
        hw.load(&s).unwrap();
        (hw.run().unwrap(), cfg.expand(&s))
    }

    #[test]
    fn hardware_matches_software_table1() {
        let (hw, sw) = run_hw("000 110", 2);
        assert_eq!(hw, sw);
    }

    #[test]
    fn hardware_matches_software_various() {
        for (s, n) in [
            ("1011", 1),
            ("1 0 1", 3),
            ("0110 1001 1110 0001 0101", 4),
            ("10 01 11 00 10 11 01", 2),
        ] {
            let (hw, sw) = run_hw(s, n);
            assert_eq!(hw, sw, "s={s} n={n}");
        }
    }

    #[test]
    fn one_vector_per_clock() {
        let s = seq("001 010 100");
        let cfg = ExpansionConfig::new(2).unwrap();
        let mut hw = OnChipExpander::new(8, 3, cfg);
        hw.load(&s).unwrap();
        let mut count = 0;
        while hw.clock().is_some() {
            count += 1;
        }
        assert_eq!(count, cfg.expanded_len(s.len()));
        assert!(hw.clock().is_none(), "stays done");
    }

    #[test]
    fn fsm_total_cycles() {
        let fsm = ExpanderFsm::new(ExpansionConfig::new(4).unwrap(), 5);
        assert_eq!(fsm.total_cycles(), 8 * 4 * 5);
    }

    #[test]
    fn remaining_cycles_counts_down() {
        let s = seq("01 10 11");
        let cfg = ExpansionConfig::new(1).unwrap();
        let mut hw = OnChipExpander::new(4, 2, cfg);
        assert_eq!(hw.remaining_cycles(), 0);
        hw.load(&s).unwrap();
        let total = cfg.expanded_len(3);
        for i in 0..total {
            assert_eq!(hw.remaining_cycles(), total - i);
            hw.clock().unwrap();
        }
        assert_eq!(hw.remaining_cycles(), 0);
    }

    #[test]
    fn reload_restarts() {
        let cfg = ExpansionConfig::new(1).unwrap();
        let mut hw = OnChipExpander::new(4, 2, cfg);
        hw.load(&seq("01")).unwrap();
        let first = hw.run().unwrap();
        hw.load(&seq("10 11")).unwrap();
        let second = hw.run().unwrap();
        assert_eq!(first.len(), 8);
        assert_eq!(second.len(), 16);
        assert_eq!(second, cfg.expand(&seq("10 11")));
    }

    #[test]
    fn run_without_load_errors() {
        let mut hw = OnChipExpander::new(4, 2, ExpansionConfig::new(1).unwrap());
        assert_eq!(hw.run(), Err(ExpandError::Empty));
    }

    #[test]
    fn iterator_interface() {
        let s = seq("0 1");
        let cfg = ExpansionConfig::new(1).unwrap();
        let mut hw = OnChipExpander::new(2, 1, cfg);
        hw.load(&s).unwrap();
        let collected: Vec<TestVector> = hw.collect();
        assert_eq!(collected.len(), 16);
    }

    #[test]
    fn single_word_memory() {
        let (hw, sw) = run_hw("101", 2);
        assert_eq!(hw, sw);
        assert_eq!(hw.len(), 16);
    }
}
