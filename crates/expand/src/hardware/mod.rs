//! Cycle-accurate register-transfer model of the on-chip test hardware.
//!
//! The paper's scheme needs only a small amount of circuit-independent
//! hardware around the on-chip test memory (§2):
//!
//! * a **test memory** wide enough for one input vector and deep enough
//!   for the longest loaded subsequence ([`TestMemory`]);
//! * an **up/down address counter** that walks the memory forwards for the
//!   forward half of `Sexp` and backwards for the reversed half
//!   ([`UpDownCounter`]);
//! * a **repetition counter** incremented each time the address counter
//!   wraps (part of [`ExpanderFsm`]);
//! * **inverters + multiplexers** on the memory outputs implementing
//!   complementation, and a second mux layer implementing the circular
//!   left shift (modelled in [`Phase::transform`]);
//! * a small **finite-state machine** sequencing the eight phases of the
//!   expansion ([`ExpanderFsm`]).
//!
//! [`OnChipExpander`] wires these together: after [`load`]ing a sequence,
//! each call to [`clock`] (or each iterator step) produces the next vector
//! of `Sexp`, exactly one per (simulated) test clock. The unit and
//! property tests prove the stream equal to the software expansion.
//!
//! For the output side, [`Misr`] models a multiple-input signature
//! register compacting the circuit's primary-output responses (§1 of the
//! paper notes response compaction is used with a precomputed signature).
//!
//! [`load`]: OnChipExpander::load
//! [`clock`]: OnChipExpander::clock
//! [`Phase::transform`]: crate::expansion::Phase::transform

mod counter;
mod expander;
mod memory;
mod misr;

pub use counter::{StepEvent, UpDownCounter};
pub use expander::{ExpanderFsm, OnChipExpander};
pub use memory::TestMemory;
pub use misr::Misr;
