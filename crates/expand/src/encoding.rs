//! Run-length encoding of test sequences.
//!
//! The paper's introduction contrasts the proposed scheme with methods
//! that *encode* an off-chip test sequence to reduce on-chip memory
//! (Iyengar, Chakrabarty & Murray \[5\]), noting that decoding
//! *"typically precludes at-speed test application"* but that encoding
//! *"can be used to reduce the memory requirements of the scheme proposed
//! here if the requirement for at-speed testing can be relaxed."*
//!
//! This module implements that extension: a simple run-length codec over
//! the loaded subsequences, with a bit-accurate storage cost model so the
//! trade-off can be quantified (see the `custom_circuit` example).
//! Deterministic test sequences — especially hold-heavy ones — compress
//! well because consecutive vectors repeat.
//!
//! # Example
//!
//! ```
//! use bist_expand::encoding::RleSequence;
//! use bist_expand::TestSequence;
//!
//! let s: TestSequence = "0011 0011 0011 1100".parse()?;
//! let enc = RleSequence::encode(&s);
//! assert_eq!(enc.runs(), 2);
//! assert_eq!(enc.decode(), s);
//! assert!(enc.storage_bits() < s.storage_bits());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{TestSequence, TestVector};

/// A run-length encoded test sequence: `(vector, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleSequence {
    runs: Vec<(TestVector, usize)>,
    width: usize,
    len: usize,
    /// Bits reserved per run counter in the storage model.
    counter_bits: usize,
}

impl RleSequence {
    /// Encodes a sequence, merging consecutive equal vectors into runs.
    /// The counter width of the storage model is sized for the longest
    /// run (minimum 1 bit).
    ///
    /// # Panics
    ///
    /// Panics if `s` is empty (an empty loaded sequence is never valid).
    #[must_use]
    pub fn encode(s: &TestSequence) -> Self {
        assert!(!s.is_empty(), "cannot encode an empty sequence");
        let mut runs: Vec<(TestVector, usize)> = Vec::new();
        for v in s {
            match runs.last_mut() {
                Some((last, count)) if last == v => *count += 1,
                _ => runs.push((v.clone(), 1)),
            }
        }
        let max_run = runs.iter().map(|&(_, c)| c).max().unwrap_or(1);
        let counter_bits = usize::BITS as usize - max_run.leading_zeros() as usize;
        RleSequence { runs, width: s.width(), len: s.len(), counter_bits: counter_bits.max(1) }
    }

    /// Decodes back to the original sequence.
    #[must_use]
    pub fn decode(&self) -> TestSequence {
        let mut out = TestSequence::new(self.width);
        for (v, count) in &self.runs {
            for _ in 0..*count {
                out.push(v.clone()).expect("fixed width");
            }
        }
        out
    }

    /// Number of runs.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// Decoded length (time units).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the decoded sequence would be empty (never happens for
    /// values produced by [`encode`](Self::encode)).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Storage cost in bits: each run stores one vector plus one run
    /// counter of [`counter_bits`](Self::counter_bits) bits.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.runs.len() * (self.width + self.counter_bits)
    }

    /// The per-run counter width of the storage model.
    #[must_use]
    pub fn counter_bits(&self) -> usize {
        self.counter_bits
    }

    /// Compression ratio versus raw storage (`< 1` means RLE is smaller).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.storage_bits() as f64 / (self.len * self.width) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    #[test]
    fn round_trip_identity() {
        for text in ["0", "01 01", "001 110 110 110 001", "1111 0000 1111"] {
            let s = seq(text);
            assert_eq!(RleSequence::encode(&s).decode(), s, "{text}");
        }
    }

    #[test]
    fn constant_sequence_is_one_run() {
        let s = seq("10 10 10 10 10 10 10 10");
        let enc = RleSequence::encode(&s);
        assert_eq!(enc.runs(), 1);
        assert_eq!(enc.len(), 8);
        // 1 run × (2 vector bits + 4 counter bits) = 6 < 16 raw bits.
        assert_eq!(enc.counter_bits(), 4);
        assert_eq!(enc.storage_bits(), 6);
        assert!(enc.ratio() < 1.0);
    }

    #[test]
    fn alternating_sequence_does_not_compress() {
        let s = seq("0 1 0 1 0 1");
        let enc = RleSequence::encode(&s);
        assert_eq!(enc.runs(), 6);
        // Counters add pure overhead here.
        assert!(enc.storage_bits() > s.storage_bits());
        assert!(enc.ratio() > 1.0);
    }

    #[test]
    fn held_sequences_compress_by_the_hold_factor() {
        let s = seq("001 110 010").held(8).unwrap();
        let enc = RleSequence::encode(&s);
        assert_eq!(enc.runs(), 3);
        assert!(enc.ratio() < 0.3);
        assert_eq!(enc.decode(), s);
    }

    #[test]
    fn counter_bits_sized_for_longest_run() {
        let s = seq("1 1 1 0"); // runs of 3 and 1 -> 2 bits
        assert_eq!(RleSequence::encode(&s).counter_bits(), 2);
        let s = seq("1 0"); // runs of 1 -> 1 bit minimum
        assert_eq!(RleSequence::encode(&s).counter_bits(), 1);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sequence_panics() {
        let _ = RleSequence::encode(&TestSequence::new(3));
    }
}
