//! Test sequences and their on-chip expansion.
//!
//! This crate implements Section 2 of Pomeranz & Reddy (DAC 1999): the
//! sequence manipulations — **repetition**, **complementation**, **circular
//! shifting** and **reversal** — that expand a short loaded sequence `S`
//! into the test sequence `Sexp` applied to the circuit at speed:
//!
//! ```text
//! S'    = S^n                  (repeat n times)
//! S''   = S' · ~S'             (concatenate with its complement)
//! S'''  = S'' · (S'' << 1)     (concatenate with its circular left shift)
//! Sexp  = S''' · r(S''')       (concatenate with its reversal)
//! ```
//!
//! so that `|Sexp| = 8·n·|S|`.
//!
//! Three implementations are provided and cross-checked against each
//! other:
//!
//! * [`expansion::expand`](expansion::ExpansionConfig::expand) — the
//!   software reference, built from the sequence operations in [`ops`];
//!   materializes all `8·n·|S|` vectors.
//! * [`ExpansionIter`] (via [`Expand::stream`](expansion::Expand::stream))
//!   — the lazy stream: one vector at a time from the flat phase
//!   schedule, clock-for-clock identical to the hardware. The fault
//!   simulators consume this through [`VectorSource`], so `Sexp` is never
//!   allocated on hot paths.
//! * [`hardware::OnChipExpander`] — a cycle-accurate register-transfer
//!   model of the paper's on-chip hardware: a test memory, an up/down
//!   address counter, a repetition counter, complement/shift multiplexers
//!   and a small phase FSM. One clock produces one vector of `Sexp`.
//!
//! # Example — the paper's Table 1
//!
//! ```
//! use bist_expand::{TestSequence, expansion::ExpansionConfig};
//!
//! let s: TestSequence = "000 110".parse()?;
//! let sexp = ExpansionConfig::new(2)?.expand(&s);
//! assert_eq!(sexp.len(), 8 * 2 * s.len());
//! assert_eq!(
//!     sexp.to_string(),
//!     "000 110 000 110 111 001 111 001 \
//!      000 101 000 101 111 010 111 010 \
//!      010 111 010 111 101 000 101 000 \
//!      001 111 001 111 110 000 110 000"
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod sequence;
mod vector;

pub mod encoding;
pub mod expansion;
pub mod hardware;
pub mod ops;
pub mod stream;

pub use error::ExpandError;
pub use sequence::TestSequence;
pub use stream::{ExpansionIter, VectorSource};
pub use vector::TestVector;
