use crate::{ExpandError, TestVector};
use std::fmt;
use std::ops::Index;
use std::str::FromStr;

/// A sequence of equally wide test vectors, applied one per clock cycle.
///
/// Sequences parse from whitespace-separated vector literals (newlines are
/// treated like spaces), matching the notation used in the paper's tables:
///
/// ```
/// use bist_expand::TestSequence;
///
/// let s: TestSequence = "000 110".parse()?;
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.reversed().to_string(), "110 000");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TestSequence {
    vectors: Vec<TestVector>,
    width: usize,
}

impl TestSequence {
    /// An empty sequence of the given vector width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "sequence width must be positive");
        TestSequence { vectors: Vec::new(), width }
    }

    /// Builds a sequence from vectors, validating widths.
    ///
    /// # Errors
    ///
    /// [`ExpandError::Empty`] if `vectors` is empty,
    /// [`ExpandError::WidthMismatch`] if widths disagree.
    pub fn from_vectors(vectors: Vec<TestVector>) -> Result<Self, ExpandError> {
        let first = vectors.first().ok_or(ExpandError::Empty)?;
        let width = first.width();
        for v in &vectors {
            if v.width() != width {
                return Err(ExpandError::WidthMismatch { expected: width, got: v.width() });
            }
        }
        Ok(TestSequence { vectors, width })
    }

    /// The vector width (number of primary inputs).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of vectors (time units).
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the sequence has no vectors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Appends a vector.
    ///
    /// # Errors
    ///
    /// [`ExpandError::WidthMismatch`] if the vector width differs.
    pub fn push(&mut self, v: TestVector) -> Result<(), ExpandError> {
        if v.width() != self.width {
            return Err(ExpandError::WidthMismatch { expected: self.width, got: v.width() });
        }
        self.vectors.push(v);
        Ok(())
    }

    /// The vectors as a slice.
    #[must_use]
    pub fn vectors(&self) -> &[TestVector] {
        &self.vectors
    }

    /// Iterates over the vectors in application order.
    pub fn iter(&self) -> std::slice::Iter<'_, TestVector> {
        self.vectors.iter()
    }

    /// The subsequence covering time units `from..=to` (inclusive), i.e.
    /// the paper's `T0[u1, u2]`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to >= len()`.
    #[must_use]
    pub fn subsequence(&self, from: usize, to: usize) -> TestSequence {
        assert!(from <= to && to < self.len(), "bad subsequence range {from}..={to}");
        TestSequence { vectors: self.vectors[from..=to].to_vec(), width: self.width }
    }

    /// Returns a copy with the vector at `index` removed (the paper's
    /// "omission of `T'[u]`").
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn without(&self, index: usize) -> TestSequence {
        assert!(index < self.len(), "index {index} out of range");
        let mut vectors = self.vectors.clone();
        vectors.remove(index);
        TestSequence { vectors, width: self.width }
    }

    /// Concatenation `self · other`.
    ///
    /// # Errors
    ///
    /// [`ExpandError::WidthMismatch`] if widths differ.
    pub fn concat(&self, other: &TestSequence) -> Result<TestSequence, ExpandError> {
        if other.width != self.width {
            return Err(ExpandError::WidthMismatch { expected: self.width, got: other.width });
        }
        let mut vectors = self.vectors.clone();
        vectors.extend(other.vectors.iter().cloned());
        Ok(TestSequence { vectors, width: self.width })
    }

    /// Repetition `S^n`: the sequence repeated `n` times.
    ///
    /// # Errors
    ///
    /// [`ExpandError::BadRepetition`] if `n == 0`.
    pub fn repeated(&self, n: usize) -> Result<TestSequence, ExpandError> {
        if n == 0 {
            return Err(ExpandError::BadRepetition { got: 0 });
        }
        let mut vectors = Vec::with_capacity(self.len() * n);
        for _ in 0..n {
            vectors.extend(self.vectors.iter().cloned());
        }
        Ok(TestSequence { vectors, width: self.width })
    }

    /// Complementation `~S`: every vector complemented.
    #[must_use]
    pub fn complemented(&self) -> TestSequence {
        TestSequence {
            vectors: self.vectors.iter().map(TestVector::complement).collect(),
            width: self.width,
        }
    }

    /// Circular left shift `S << k`: every vector rotated left by `k`.
    #[must_use]
    pub fn shifted(&self, k: usize) -> TestSequence {
        TestSequence {
            vectors: self.vectors.iter().map(|v| v.rotate_left(k)).collect(),
            width: self.width,
        }
    }

    /// Reversal `rS`: the vectors in reverse order.
    #[must_use]
    pub fn reversed(&self) -> TestSequence {
        let mut vectors = self.vectors.clone();
        vectors.reverse();
        TestSequence { vectors, width: self.width }
    }

    /// Hold `S@k`: every vector repeated `k` consecutive times — the
    /// input-holding manipulation of Nachman et al. \[3\] that the paper
    /// builds on (holding inputs helps sequential circuits traverse
    /// state space).
    ///
    /// # Errors
    ///
    /// [`ExpandError::BadRepetition`] if `k == 0`.
    pub fn held(&self, k: usize) -> Result<TestSequence, ExpandError> {
        if k == 0 {
            return Err(ExpandError::BadRepetition { got: 0 });
        }
        let mut vectors = Vec::with_capacity(self.len() * k);
        for v in &self.vectors {
            for _ in 0..k {
                vectors.push(v.clone());
            }
        }
        Ok(TestSequence { vectors, width: self.width })
    }

    /// Total number of input bits stored (`len × width`) — the on-chip
    /// memory cost of holding this sequence.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.len() * self.width
    }
}

impl Index<usize> for TestSequence {
    type Output = TestVector;

    fn index(&self, index: usize) -> &TestVector {
        &self.vectors[index]
    }
}

impl<'a> IntoIterator for &'a TestSequence {
    type Item = &'a TestVector;
    type IntoIter = std::slice::Iter<'a, TestVector>;

    fn into_iter(self) -> Self::IntoIter {
        self.vectors.iter()
    }
}

impl fmt::Display for TestSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.vectors.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl FromStr for TestSequence {
    type Err = ExpandError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let vectors =
            s.split_whitespace().map(str::parse).collect::<Result<Vec<TestVector>, _>>()?;
        TestSequence::from_vectors(vectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    #[test]
    fn parse_multiline() {
        let s: TestSequence = "000\n110\n 011 ".parse().unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.width(), 3);
        assert_eq!(s.to_string(), "000 110 011");
    }

    #[test]
    fn parse_rejects_ragged_widths() {
        assert_eq!(
            "000 11".parse::<TestSequence>(),
            Err(ExpandError::WidthMismatch { expected: 3, got: 2 })
        );
    }

    #[test]
    fn parse_rejects_empty() {
        assert_eq!("".parse::<TestSequence>(), Err(ExpandError::Empty));
        assert_eq!("   \n ".parse::<TestSequence>(), Err(ExpandError::Empty));
    }

    #[test]
    fn push_checks_width() {
        let mut s = TestSequence::new(3);
        s.push("010".parse().unwrap()).unwrap();
        let err = s.push("0101".parse().unwrap()).unwrap_err();
        assert_eq!(err, ExpandError::WidthMismatch { expected: 3, got: 4 });
    }

    #[test]
    fn repetition_example_from_paper() {
        // §2: S = (000, 111) → S^2 = (000, 111, 000, 111).
        let s = seq("000 111");
        assert_eq!(s.repeated(2).unwrap().to_string(), "000 111 000 111");
        assert_eq!(s.repeated(3).unwrap().len(), 6);
        assert_eq!(s.repeated(1).unwrap(), s);
        assert!(s.repeated(0).is_err());
    }

    #[test]
    fn complementation_example_from_paper() {
        // §2: S = (000, 111) → ~S = (111, 000).
        assert_eq!(seq("000 111").complemented().to_string(), "111 000");
    }

    #[test]
    fn shifting_example_from_paper() {
        // §2: S = (001, 101) → S << 1 = (010, 011).
        assert_eq!(seq("001 101").shifted(1).to_string(), "010 011");
    }

    #[test]
    fn reversal_example_from_paper() {
        // §2: S = (000, 001, 111) → rS = (111, 001, 000).
        assert_eq!(seq("000 001 111").reversed().to_string(), "111 001 000");
    }

    #[test]
    fn reversal_and_complement_are_involutions() {
        let s = seq("001 110 010 111");
        assert_eq!(s.reversed().reversed(), s);
        assert_eq!(s.complemented().complemented(), s);
    }

    #[test]
    fn subsequence_is_inclusive() {
        let s = seq("000 001 010 011 100");
        let sub = s.subsequence(1, 3);
        assert_eq!(sub.to_string(), "001 010 011");
    }

    #[test]
    fn without_removes_one_vector() {
        let s = seq("000 001 010");
        assert_eq!(s.without(1).to_string(), "000 010");
        assert_eq!(s.len(), 3, "original untouched");
    }

    #[test]
    fn concat_checks_width() {
        let a = seq("00 11");
        let b = seq("000");
        assert!(a.concat(&b).is_err());
        assert_eq!(a.concat(&a).unwrap().len(), 4);
    }

    #[test]
    fn storage_bits() {
        assert_eq!(seq("0000 1111 0101").storage_bits(), 12);
    }

    #[test]
    fn indexing_and_iteration() {
        let s = seq("01 10 11");
        assert_eq!(s[2].to_string(), "11");
        let all: Vec<String> = s.iter().map(ToString::to_string).collect();
        assert_eq!(all, vec!["01", "10", "11"]);
        let via_into: usize = (&s).into_iter().count();
        assert_eq!(via_into, 3);
    }
}
