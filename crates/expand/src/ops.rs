//! First-class sequence operations.
//!
//! The paper defines four manipulations that the on-chip hardware can apply
//! to a stored sequence. [`SequenceOp`] reifies them so that expansion
//! recipes can be described as data — used by the ablation benchmarks to
//! measure the contribution of each operation, and by the hardware model's
//! documentation of its control words.
//!
//! # Example
//!
//! ```
//! use bist_expand::{TestSequence, ops::SequenceOp};
//!
//! let s: TestSequence = "001 101".parse()?;
//! let shifted = SequenceOp::Shift(1).apply(&s)?;
//! assert_eq!(shifted.to_string(), "010 011");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{ExpandError, TestSequence};
use std::fmt;

/// One of the paper's sequence manipulations (plus the input-hold of
/// \[3\], which the paper cites as related prior art).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SequenceOp {
    /// `S^n` — repeat the sequence `n` times (`n ≥ 1`).
    Repeat(usize),
    /// `~S` — complement every vector.
    Complement,
    /// `S << k` — circularly shift every vector left by `k`.
    Shift(usize),
    /// `rS` — reverse the order of the vectors.
    Reverse,
    /// `S@k` — hold every vector for `k` consecutive cycles (`k ≥ 1`).
    Hold(usize),
}

impl SequenceOp {
    /// Applies the operation.
    ///
    /// # Errors
    ///
    /// [`ExpandError::BadRepetition`] for `Repeat(0)` or `Hold(0)`.
    pub fn apply(self, s: &TestSequence) -> Result<TestSequence, ExpandError> {
        match self {
            SequenceOp::Repeat(n) => s.repeated(n),
            SequenceOp::Complement => Ok(s.complemented()),
            SequenceOp::Shift(k) => Ok(s.shifted(k)),
            SequenceOp::Reverse => Ok(s.reversed()),
            SequenceOp::Hold(k) => s.held(k),
        }
    }

    /// The factor by which the operation multiplies sequence length.
    #[must_use]
    pub fn length_factor(self) -> usize {
        match self {
            SequenceOp::Repeat(n) | SequenceOp::Hold(n) => n,
            _ => 1,
        }
    }
}

impl fmt::Display for SequenceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequenceOp::Repeat(n) => write!(f, "repeat×{n}"),
            SequenceOp::Complement => write!(f, "complement"),
            SequenceOp::Shift(k) => write!(f, "shift<<{k}"),
            SequenceOp::Reverse => write!(f, "reverse"),
            SequenceOp::Hold(k) => write!(f, "hold@{k}"),
        }
    }
}

/// Applies a pipeline of operations left to right.
///
/// # Errors
///
/// Propagates the first failing operation.
///
/// # Example
///
/// ```
/// use bist_expand::{TestSequence, ops::{apply_all, SequenceOp}};
///
/// let s: TestSequence = "01 10".parse()?;
/// let out = apply_all(&s, &[SequenceOp::Repeat(2), SequenceOp::Reverse])?;
/// assert_eq!(out.to_string(), "10 01 10 01");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn apply_all(s: &TestSequence, ops: &[SequenceOp]) -> Result<TestSequence, ExpandError> {
    let mut cur = s.clone();
    for op in ops {
        cur = op.apply(&cur)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    #[test]
    fn ops_match_method_calls() {
        let s = seq("001 110 010");
        assert_eq!(SequenceOp::Repeat(2).apply(&s).unwrap(), s.repeated(2).unwrap());
        assert_eq!(SequenceOp::Complement.apply(&s).unwrap(), s.complemented());
        assert_eq!(SequenceOp::Shift(2).apply(&s).unwrap(), s.shifted(2));
        assert_eq!(SequenceOp::Reverse.apply(&s).unwrap(), s.reversed());
    }

    #[test]
    fn repeat_zero_fails() {
        assert!(SequenceOp::Repeat(0).apply(&seq("01")).is_err());
    }

    #[test]
    fn length_factor() {
        assert_eq!(SequenceOp::Repeat(4).length_factor(), 4);
        assert_eq!(SequenceOp::Reverse.length_factor(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(SequenceOp::Repeat(3).to_string(), "repeat×3");
        assert_eq!(SequenceOp::Shift(1).to_string(), "shift<<1");
    }

    #[test]
    fn complement_commutes_with_shift() {
        // The hardware relies on ~(S << 1) == (~S) << 1 so the complement
        // and shift multiplexers can be wired independently.
        let s = seq("0011 1010 0110");
        assert_eq!(s.shifted(1).complemented(), s.complemented().shifted(1));
    }

    #[test]
    fn reverse_commutes_with_pointwise_ops() {
        let s = seq("0011 1010");
        assert_eq!(s.reversed().complemented(), s.complemented().reversed());
        assert_eq!(s.reversed().shifted(1), s.shifted(1).reversed());
    }

    #[test]
    fn hold_repeats_each_vector() {
        let s = seq("01 10 11");
        assert_eq!(SequenceOp::Hold(2).apply(&s).unwrap().to_string(), "01 01 10 10 11 11");
        assert_eq!(SequenceOp::Hold(1).apply(&s).unwrap(), s);
        assert!(SequenceOp::Hold(0).apply(&s).is_err());
        assert_eq!(SequenceOp::Hold(3).length_factor(), 3);
        assert_eq!(SequenceOp::Hold(2).to_string(), "hold@2");
    }

    #[test]
    fn hold_differs_from_repeat() {
        // S^2 = S·S interleaves whole copies; S@2 doubles in place.
        let s = seq("01 10");
        assert_eq!(s.repeated(2).unwrap().to_string(), "01 10 01 10");
        assert_eq!(s.held(2).unwrap().to_string(), "01 01 10 10");
    }

    #[test]
    fn apply_all_chains() {
        let s = seq("01 10");
        let out =
            apply_all(&s, &[SequenceOp::Repeat(2), SequenceOp::Complement, SequenceOp::Reverse])
                .unwrap();
        assert_eq!(out.to_string(), "01 10 01 10");
    }
}
