//! Chaos acceptance suite for the resilience layer: deterministic fault
//! injection ([`bist_batch::faultpoint`]), panic quarantine, deadlines,
//! retries, bounded-cache eviction and crash-safe resume.
//!
//! The headline property mirrors the paper's reproducibility claim at
//! the infrastructure level: a campaign bombarded with injected faults —
//! panics, transient errors, poisoned cache computes, evictions, even a
//! kill and resume — must converge to the *bit-identical* summary of a
//! fault-free run. Timing differs; results may not.

use std::sync::Arc;
use std::time::Duration;

use bist_batch::faultpoint::{FaultPlan, FaultPoint, FaultSite};
use bist_batch::{
    BatchError, CachePolicy, Campaign, CampaignEngine, JobStatus, JsonlSink, MemorySink,
    ReportSink, ResumeLog, RetryPolicy,
};
use subseq_bist::netlist::benchmarks;
use subseq_bist::tgen::TgenConfig;
use subseq_bist::{Backend, Obs, Registry};

/// A short-`T0` configuration affordable on the biggest analogs.
fn tiny_tgen() -> TgenConfig {
    TgenConfig::new().max_length(12).burst_len(6).max_stall(2).compaction_budget(0)
}

fn campaign_over(names: &[&'static str]) -> Campaign {
    Campaign::new()
        .suite_circuits(names.iter().copied())
        .backends([Backend::Packed, Backend::Sharded { threads: 0, width: 256 }])
        .seeds([1999])
        .ns(vec![1])
        .tgen(tiny_tgen())
        .verify(false)
}

/// One-backend campaign for the cancellation matrix (threads(1) keeps
/// the worker/queue interleaving deterministic).
fn serial_campaign(names: &[&'static str]) -> Campaign {
    Campaign::new()
        .suite_circuits(names.iter().copied())
        .backends([Backend::Packed])
        .seeds([1999])
        .ns(vec![1])
        .tgen(tiny_tgen())
        .verify(false)
}

// --- Cancellation-path matrix -------------------------------------------
//
// Four ways a campaign stops or survives, each with exact counters and a
// drained queue: first-error cancellation, keep_going, deadline timeout
// and panic quarantine.

/// First-error mode: a quarantined panic cancels the campaign, every
/// queued job drains as a counted cancellation, nothing hangs.
#[test]
fn first_error_panic_cancels_and_drains_the_queue() {
    let names = ["s27", "a298", "a344", "a382"];
    let registry = Arc::new(Registry::new());
    // Empty patterns ride whichever job the cost-ordered plan dequeues
    // first: the delay keeps the single worker busy long enough for the
    // producer to enqueue the whole tail, then the panic fires and the
    // remaining three jobs drain as cancelled without ever consulting
    // the fault plan.
    let plan = Arc::new(
        FaultPlan::new(1)
            .point(FaultPoint::new(FaultSite::JobDelay, "").delay(Duration::from_millis(150)))
            .point(FaultPoint::new(FaultSite::JobPanic, "")),
    );
    let err = CampaignEngine::new()
        .threads(1)
        .obs(Obs::with_registry(Arc::clone(&registry)))
        .chaos(plan)
        .run(&serial_campaign(&names), &mut [])
        .unwrap_err();
    match &err {
        BatchError::JobFailed { message, .. } => {
            assert!(message.contains("panicked"), "{message}");
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counter("pool.panics"), Some(1));
    assert_eq!(snap.counter("pool.cancellations"), Some(3), "whole tail drained as cancelled");
    assert_eq!(snap.counter("pool.timeouts"), Some(0));
    assert_eq!(snap.counter("pool.retries"), Some(0));
    assert_eq!(snap.gauge("pool.queue_depth"), Some(0), "queue drained to zero");
}

/// keep_going mode: the same panic is quarantined and recorded, the rest
/// of the matrix still runs, nothing is cancelled.
#[test]
fn keep_going_quarantines_the_panic_and_finishes() {
    let names = ["s27", "a298", "a344", "a382"];
    let registry = Arc::new(Registry::new());
    let plan = Arc::new(FaultPlan::new(1).point(FaultPoint::new(FaultSite::JobPanic, ":s27:")));
    let mut sink = MemorySink::new();
    let outcome = {
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        CampaignEngine::new()
            .threads(1)
            .keep_going(true)
            .obs(Obs::with_registry(Arc::clone(&registry)))
            .chaos(plan)
            .run(&serial_campaign(&names), &mut sinks)
            .unwrap()
    };
    assert_eq!(outcome.summary.jobs_total, 4);
    assert_eq!(outcome.summary.jobs_ok, 3);
    assert_eq!(outcome.summary.jobs_failed, 1);
    assert_eq!(outcome.summary.jobs_skipped, 0);
    let failed: Vec<_> = sink.records.iter().filter(|r| r.status == JobStatus::Failed).collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].circuit, "s27");
    let error = failed[0].error.as_deref().unwrap();
    assert!(error.contains("panicked after 1 attempt"), "{error}");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("pool.panics"), Some(1));
    assert_eq!(snap.counter("pool.cancellations"), Some(0), "keep_going never cancels");
    assert_eq!(snap.counter("pool.timeouts"), Some(0));
    assert_eq!(snap.gauge("pool.queue_depth"), Some(0));
}

/// Deadline mode: a job held past its deadline is cooperatively
/// cancelled by the sweep, counted as a timeout, and — unlike a
/// transient — never retried.
#[test]
fn expired_deadline_times_the_job_out_without_retries() {
    let names = ["s27", "a298", "a344"];
    let registry = Arc::new(Registry::new());
    let plan =
        Arc::new(FaultPlan::new(3).point(
            FaultPoint::new(FaultSite::JobDelay, ":a298:").delay(Duration::from_millis(2500)),
        ));
    let mut sink = MemorySink::new();
    let outcome = {
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        CampaignEngine::new()
            .threads(1)
            .keep_going(true)
            .deadline(Duration::from_millis(500))
            .retry(RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(1) })
            .obs(Obs::with_registry(Arc::clone(&registry)))
            .chaos(plan)
            .run(&serial_campaign(&names), &mut sinks)
            .unwrap()
    };
    assert_eq!(outcome.summary.jobs_ok, 2);
    assert_eq!(outcome.summary.jobs_failed, 1);
    let failed = sink.records.iter().find(|r| r.status == JobStatus::Failed).unwrap();
    assert_eq!(failed.circuit, "a298");
    let error = failed.error.as_deref().unwrap();
    assert!(error.contains("timed out after 1 attempt"), "{error}");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("pool.timeouts"), Some(1));
    assert_eq!(snap.counter("pool.retries"), Some(0), "deadline expiry is not retryable");
    assert_eq!(snap.counter("pool.panics"), Some(0));
    assert_eq!(snap.counter("pool.cancellations"), Some(0));
    assert_eq!(snap.gauge("pool.queue_depth"), Some(0));
}

/// Retry mode: injected transient failures heal within the attempt
/// budget — every job succeeds, the retry counter is exact, and the
/// campaign needs neither keep_going nor cancellation.
#[test]
fn transient_faults_heal_within_the_retry_budget() {
    let names = ["s27", "a298", "a344", "a382"];
    let registry = Arc::new(Registry::new());
    let plan = Arc::new(FaultPlan::new(9).point(FaultPoint::new(FaultSite::JobTransient, "")));
    let outcome = CampaignEngine::new()
        .threads(1)
        .retry(RetryPolicy { max_attempts: 2, backoff: Duration::from_millis(1) })
        .obs(Obs::with_registry(Arc::clone(&registry)))
        .chaos(Arc::clone(&plan))
        .run(&serial_campaign(&names), &mut [])
        .unwrap();
    assert_eq!(outcome.summary.jobs_ok, 4);
    assert_eq!(outcome.summary.jobs_failed, 0);
    assert_eq!(plan.injected(), 4, "one injected transient per job");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("pool.retries"), Some(4), "exactly one retry per job");
    assert_eq!(snap.counter("pool.panics"), Some(0));
    assert_eq!(snap.counter("pool.timeouts"), Some(0));
    assert_eq!(snap.counter("pool.cancellations"), Some(0));
    assert_eq!(snap.gauge("pool.queue_depth"), Some(0));
}

// --- Chaos acceptance ----------------------------------------------------

/// The tentpole acceptance property: a campaign under deterministic
/// fault injection (transient errors + poisoned cache computes), with
/// the artifact cache squeezed under a byte budget, killed mid-journal
/// and resumed, produces the bit-identical summary digest of a
/// fault-free, unbounded, uninterrupted run.
fn assert_chaos_campaign_converges(names: &[&'static str]) {
    let campaign = campaign_over(names);
    let jobs = 2 * names.len();
    let fingerprint = campaign.fingerprint();

    // Ground truth: fault-free, unbounded, uninterrupted.
    let baseline = CampaignEngine::new().run(&campaign, &mut []).unwrap();
    assert_eq!(baseline.summary.jobs_ok, jobs);
    let digest = baseline.summary.digest();

    let dir = std::env::temp_dir().join("bist_batch_resilience_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("chaos_{}.jsonl", names.len()));

    // Chaos pass: every job takes one injected transient, every T0
    // compute is poisoned once, and the cache budget of one byte forces
    // an eviction after every job (recompute-on-miss must stay
    // bit-identical for the digest to survive).
    let chaos = || {
        Arc::new(
            FaultPlan::new(2024)
                .point(FaultPoint::new(FaultSite::JobTransient, ""))
                .point(FaultPoint::new(FaultSite::CachePoison, "t0:")),
        )
    };
    let engine = |registry: &Arc<Registry>| {
        CampaignEngine::new()
            .obs(Obs::with_registry(Arc::clone(registry)))
            .chaos(chaos())
            .retry(RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(1) })
            .cache_policy(CachePolicy::bounded(1))
    };

    let registry = Arc::new(Registry::new());
    let outcome = {
        let mut sink = JsonlSink::create(&path).unwrap().with_fingerprint(&fingerprint);
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        let outcome = engine(&registry).run(&campaign, &mut sinks).unwrap();
        assert_eq!(sink.rows(), jobs);
        outcome
    };
    assert_eq!(outcome.summary.jobs_ok, jobs, "every injected fault healed");
    assert_eq!(outcome.summary.digest(), digest, "chaos run must converge to the baseline");
    assert!(outcome.cache.total_evictions() > 0, "the byte budget must actually evict");
    assert!(
        outcome.residency.total_approx_bytes() <= 1,
        "cache ended over budget: {}",
        outcome.residency
    );
    let snap = registry.snapshot();
    assert!(snap.counter("pool.retries").unwrap_or(0) >= jobs as u64, "one retry per job minimum");
    assert_eq!(snap.counter("pool.panics"), Some(0));

    // Kill simulation: keep half the journal plus a torn fragment of the
    // next row — exactly what a `kill -9` mid-write leaves behind.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let keep = jobs / 2;
    let mut wreck: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
    wreck.push_str(&lines[keep][..lines[keep].len() - 10]);
    std::fs::write(&path, &wreck).unwrap();

    // Resume: replay the surviving rows, rerun exactly the missing jobs
    // (under fresh chaos — the restarted process re-injects), merge.
    let log = ResumeLog::load(&path, &fingerprint).unwrap();
    assert!(log.truncated(), "the torn row must be detected");
    assert_eq!(log.records().len(), keep);
    let resumed_registry = Arc::new(Registry::new());
    let resumed = {
        let mut sink = JsonlSink::append(&path).unwrap().with_fingerprint(&fingerprint);
        assert_eq!(sink.rows(), keep, "append repairs the tear and keeps the survivors");
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        let resumed =
            engine(&resumed_registry).run_resumed(&campaign, &mut sinks, log.records()).unwrap();
        assert_eq!(sink.rows(), jobs, "journal holds the full matrix again");
        resumed
    };
    assert_eq!(resumed.summary.jobs_total, jobs);
    assert_eq!(resumed.summary.jobs_ok, jobs);
    assert_eq!(resumed.summary.jobs_skipped, 0);
    assert_eq!(resumed.summary.digest(), digest, "killed+resumed must merge bit-identically");
    // Exactly the missing jobs executed — no replayed job ran again.
    let snap = resumed_registry.snapshot();
    assert_eq!(
        snap.histogram("pool.exec_us").map(|h| h.count),
        Some((jobs - keep) as u64),
        "resume must execute exactly the missing jobs"
    );
    // The repaired, completed journal is strictly schema-valid.
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(bist_batch::jsonl::validate_jsonl(&text).unwrap(), jobs);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn chaos_campaign_converges_up_to_3000_gates() {
    let names: Vec<&'static str> = benchmarks::suite_up_to(3000).iter().map(|e| e.name).collect();
    assert_eq!(names.len(), 12);
    assert_chaos_campaign_converges(&names);
}

/// The full 13-circuit chaos matrix, including the `s35932` analog —
/// ignored in debug builds like the plain 13-circuit acceptance test; CI
/// runs it via
/// `cargo test --release -p bist-batch --test resilience full_13_circuit`.
#[test]
#[cfg_attr(debug_assertions, ignore = "a35932 jobs take minutes unoptimized; run with --release")]
fn full_13_circuit_chaos_campaign_converges() {
    let names: Vec<&'static str> = benchmarks::suite().iter().map(|e| e.name).collect();
    assert_eq!(names.len(), 13);
    assert_chaos_campaign_converges(&names);
}
