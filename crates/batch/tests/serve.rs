//! End-to-end acceptance for `subseq-bist serve`: real sockets, real
//! concurrent clients, and the properties the service exists for —
//! streamed results bit-identical to offline runs, one shared artifact
//! cache across campaigns, bounded admission, and a graceful drain that
//! leaves every journal resumable.
//!
//! The HTTP client below is hand-rolled over [`TcpStream`] for the same
//! reason the server is hand-rolled over [`TcpListener`]: the container
//! has no HTTP dependency, and the tests should exercise the exact
//! bytes a curl user would see (status line, `Content-Length` bodies,
//! chunked transfer-encoding).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

use bist_batch::jsonl::validate_jsonl_line;
use bist_batch::{
    campaign_from_spec, CachePolicy, CampaignEngine, CampaignServer, ResumeLog, ServeConfig,
};
use bist_obs::{export, Registry};

/// A small two-circuit spec; `SPEC_A` and `SPEC_B` share `s27` so a
/// warm cache is observable across campaigns.
const SPEC_A: &str = r#"{"circuits": ["s27", "a298"], "seeds": [1999], "ns": [1], "t0_cap": 12, "t0_budget": 0, "verify": false}"#;
const SPEC_B: &str = r#"{"circuits": ["s27", "a344"], "seeds": [1999], "ns": [1], "t0_cap": 12, "t0_budget": 0, "verify": false}"#;

fn temp_journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("subseq-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(config: ServeConfig) -> (SocketAddr, Arc<Registry>, JoinHandle<()>) {
    let server = CampaignServer::bind(config).expect("bind");
    let addr = server.local_addr();
    let registry = server.registry();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, registry, handle)
}

struct Response {
    status: u16,
    body: String,
}

/// Sends one HTTP/1.1 request and reads the full response (the server
/// always closes the connection afterwards).
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    send_request(&stream, method, path, headers, body);
    read_response(&mut BufReader::new(stream))
}

fn send_request(
    mut stream: &TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) {
    let mut head =
        format!("{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n", body.len());
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    stream.flush().expect("flush");
}

/// Reads status line + headers, leaving the reader at the body.
/// Returns (status, content-length, chunked).
fn read_head(reader: &mut impl BufRead) -> (u16, usize, bool) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
        .parse()
        .expect("numeric status");
    let mut length = 0usize;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else { continue };
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => length = value.trim().parse().expect("content-length"),
            "transfer-encoding" if value.trim() == "chunked" => chunked = true,
            _ => {}
        }
    }
    (status, length, chunked)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let (status, length, chunked) = read_head(reader);
    let body = if chunked {
        read_chunks(reader)
    } else {
        let mut buf = vec![0u8; length];
        reader.read_exact(&mut buf).expect("body");
        String::from_utf8(buf).expect("utf-8 body")
    };
    Response { status, body }
}

/// Decodes a chunked body to completion (terminal zero-size chunk).
fn read_chunks(reader: &mut impl BufRead) -> String {
    let mut body = String::new();
    while read_one_chunk(reader, &mut body) {}
    body
}

/// Reads one chunk; returns false on the terminal chunk.
fn read_one_chunk(reader: &mut impl BufRead, body: &mut String) -> bool {
    let mut size_line = String::new();
    reader.read_line(&mut size_line).expect("chunk size");
    let size = usize::from_str_radix(size_line.trim(), 16)
        .unwrap_or_else(|_| panic!("bad chunk size {size_line:?}"));
    let mut data = vec![0u8; size + 2]; // chunk data + trailing CRLF
    reader.read_exact(&mut data).expect("chunk data");
    body.push_str(std::str::from_utf8(&data[..size]).expect("utf-8 chunk"));
    size != 0
}

/// Pulls an unquoted numeric field out of a flat JSON object body.
fn json_u64(body: &str, key: &str) -> u64 {
    let tail = body
        .split(&format!("\"{key}\": "))
        .nth(1)
        .unwrap_or_else(|| panic!("no `{key}` in {body}"));
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().unwrap_or_else(|_| panic!("bad `{key}` in {body}"))
}

/// Pulls a string field out of a flat JSON object body.
fn json_str(body: &str, key: &str) -> String {
    let tail = body
        .split(&format!("\"{key}\": \""))
        .nth(1)
        .unwrap_or_else(|| panic!("no `{key}` in {body}"));
    tail.split('"').next().expect("closing quote").to_string()
}

/// The tentpole acceptance test: two clients drive the real socket
/// concurrently; each streamed campaign matches an offline
/// [`CampaignEngine::run`] of the identical spec bit-for-bit, the shared
/// circuit is parsed/compiled/generated once *process-wide*, and
/// `GET /metrics` survives the strict validator.
#[test]
fn concurrent_clients_match_offline_digests_and_share_one_cache() {
    let dir = temp_journal_dir("concurrent");
    let (addr, registry, server) = start(ServeConfig {
        journal_dir: dir.clone(),
        cache_policy: CachePolicy::unbounded(),
        ..ServeConfig::default()
    });

    let health = request(addr, "GET", "/healthz", &[], "");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    // /metrics is valid before any campaign has run (near-empty registry).
    let metrics = request(addr, "GET", "/metrics", &[], "");
    assert_eq!(metrics.status, 200);
    export::validate_metrics_json(&metrics.body).expect("cold metrics validate");

    let client = |tag: &'static str, spec: &'static str| {
        std::thread::spawn(move || {
            let submitted = request(addr, "POST", "/campaigns", &[("X-Client", tag)], spec);
            assert_eq!(submitted.status, 200, "submit: {}", submitted.body);
            let id = json_u64(&submitted.body, "id");
            let fingerprint = json_str(&submitted.body, "fingerprint");

            // The results stream ends exactly when the campaign does.
            let results = request(addr, "GET", &format!("/campaigns/{id}/results"), &[], "");
            assert_eq!(results.status, 200);
            let rows: Vec<&str> = results.body.lines().collect();
            assert_eq!(rows.len(), 2, "one row per job:\n{}", results.body);
            for row in &rows {
                validate_jsonl_line(row).expect("streamed row validates");
                assert!(
                    row.contains(&format!("\"fp\": \"{fingerprint}\"")),
                    "streamed row carries the campaign fingerprint: {row}"
                );
            }

            let summary = request(addr, "GET", &format!("/campaigns/{id}/summary"), &[], "");
            assert_eq!(summary.status, 200, "summary: {}", summary.body);
            (id, fingerprint, summary.body)
        })
    };
    let alice = client("alice", SPEC_A);
    let bob = client("bob", SPEC_B);
    let (id_a, fp_a, summary_a) = alice.join().expect("client a");
    let (id_b, fp_b, summary_b) = bob.join().expect("client b");

    // Each served summary is bit-identical to an offline run of the
    // very same JSON spec (same parser, fresh engine, private cache).
    for (spec, fingerprint, summary) in [(SPEC_A, &fp_a, &summary_a), (SPEC_B, &fp_b, &summary_b)] {
        let campaign = campaign_from_spec(spec).expect("spec parses offline too");
        assert_eq!(&campaign.fingerprint(), fingerprint);
        let offline = CampaignEngine::new().run(&campaign, &mut []).expect("offline run");
        assert_eq!(
            json_str(summary, "digest"),
            format!("{:016x}", offline.summary.digest()),
            "served digest == offline digest for {spec}"
        );
        assert_eq!(json_u64(summary, "jobs_total"), offline.summary.jobs_total as u64);
        assert_eq!(json_u64(summary, "jobs_ok"), offline.summary.jobs_ok as u64);
        assert_eq!(json_u64(summary, "jobs_failed"), 0);
    }

    // Cross-campaign sharing: four jobs over three distinct circuits —
    // the shared `s27` missed once for the whole process, not once per
    // campaign.
    let snap = registry.snapshot();
    for shelf in ["circuit", "tape", "fault", "t0"] {
        assert_eq!(
            snap.counter(&format!("cache.{shelf}.miss")),
            Some(3),
            "≤ 1 cache.{shelf}.miss per distinct (circuit, seed, pass-set)"
        );
        assert_eq!(
            snap.counter(&format!("cache.{shelf}.hit")),
            Some(1),
            "the second campaign's s27 job hit the warm cache.{shelf}"
        );
    }
    assert_eq!(snap.counter("serve.campaigns.accepted"), Some(2));
    assert_eq!(snap.counter("serve.campaigns.completed"), Some(2));
    assert_eq!(snap.counter("serve.campaigns.rejected").unwrap_or(0), 0);
    assert_eq!(snap.gauge("serve.queue.pending"), Some(0), "queue drained");

    // The warm /metrics render also survives the strict validator.
    let metrics = request(addr, "GET", "/metrics", &[], "");
    assert_eq!(metrics.status, 200);
    let rows = export::validate_metrics_json(&metrics.body).expect("warm metrics validate");
    assert!(rows > 0, "registry is non-trivial after two campaigns");

    // Journals landed on disk, fingerprint-stamped and resumable.
    for (id, fp) in [(id_a, &fp_a), (id_b, &fp_b)] {
        let journal = dir.join(format!("campaign-{id}.jsonl"));
        let log = ResumeLog::load(&journal, fp).expect("journal loads");
        assert_eq!(log.rows(), 2);
        assert!(!log.truncated());
    }

    let shutdown = request(addr, "POST", "/shutdown", &[], "");
    assert_eq!(shutdown.status, 200);
    assert!(shutdown.body.contains("draining"));
    server.join().expect("server thread exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: a full pending queue answers `429` (and counts
/// the rejection), malformed specs answer `400` at submission, and
/// unknown routes answer `404` — none of them crash the daemon.
#[test]
fn admission_bounds_and_submission_errors_are_typed_http_statuses() {
    let dir = temp_journal_dir("admission");
    let (addr, registry, server) =
        start(ServeConfig { journal_dir: dir.clone(), max_pending: 0, ..ServeConfig::default() });

    let rejected = request(addr, "POST", "/campaigns", &[], SPEC_A);
    assert_eq!(rejected.status, 429, "{}", rejected.body);
    assert!(rejected.body.contains("queue is full"), "{}", rejected.body);

    let misspelled = request(addr, "POST", "/campaigns", &[], r#"{"circuitz": ["s27"]}"#);
    assert_eq!(misspelled.status, 400);
    assert!(misspelled.body.contains("unknown key"), "{}", misspelled.body);

    let bad_optimize = request(addr, "POST", "/campaigns", &[], r#"{"optimize": "xyzzy"}"#);
    assert_eq!(bad_optimize.status, 400);
    assert!(bad_optimize.body.contains("optimize"), "{}", bad_optimize.body);

    let empty_matrix = request(addr, "POST", "/campaigns", &[], r#"{"seeds": []}"#);
    assert_eq!(empty_matrix.status, 400, "bad matrices fail at submission");

    let missing = request(addr, "GET", "/campaigns/99/summary", &[], "");
    assert_eq!(missing.status, 404);
    let no_route = request(addr, "GET", "/nope", &[], "");
    assert_eq!(no_route.status, 404);

    let snap = registry.snapshot();
    assert_eq!(snap.counter("serve.campaigns.rejected"), Some(1));
    assert_eq!(snap.counter("serve.campaigns.accepted").unwrap_or(0), 0);

    let shutdown = request(addr, "POST", "/shutdown", &[], "");
    assert_eq!(shutdown.status, 200);
    server.join().expect("server thread exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain: shutdown while a campaign is mid-flight finishes that
/// campaign (every row streamed and journaled), cancels the queued one,
/// and leaves BOTH journals resumable — the cancelled campaign's empty
/// journal replays as a fresh run through `run_resumed`.
#[test]
fn graceful_drain_finishes_in_flight_work_and_leaves_resumable_journals() {
    let dir = temp_journal_dir("drain");
    let (addr, _registry, server) =
        start(ServeConfig { journal_dir: dir.clone(), threads: 1, ..ServeConfig::default() });

    // Big enough that it is still mid-flight while the test queues a
    // second campaign and posts the shutdown.
    let big = r#"{"circuits": ["s27", "a298", "a344"], "seeds": [1, 2, 3], "ns": [1, 2], "t0_cap": 32, "t0_budget": 16, "verify": false}"#;
    let first = request(addr, "POST", "/campaigns", &[("X-Client", "alice")], big);
    assert_eq!(first.status, 200, "{}", first.body);
    let first_id = json_u64(&first.body, "id");
    let first_fp = json_str(&first.body, "fingerprint");
    let jobs = campaign_from_spec(big).expect("spec").expand().expect("matrix").len();

    // Open the results stream and wait for the first row — proof the
    // campaign is in flight before anything else happens.
    let stream = TcpStream::connect(addr).expect("connect");
    send_request(&stream, "GET", &format!("/campaigns/{first_id}/results"), &[], "");
    let mut reader = BufReader::new(stream);
    let (status, _, chunked) = read_head(&mut reader);
    assert_eq!(status, 200);
    assert!(chunked, "results are streamed chunked");
    let mut streamed = String::new();
    assert!(read_one_chunk(&mut reader, &mut streamed), "first row arrives mid-run");

    // Queue a second campaign behind the running one, and park a
    // summary reader on it before the listener goes away.
    let second = request(addr, "POST", "/campaigns", &[("X-Client", "bob")], SPEC_B);
    assert_eq!(second.status, 200, "{}", second.body);
    let second_id = json_u64(&second.body, "id");
    let second_fp = json_str(&second.body, "fingerprint");
    let second_summary = std::thread::spawn(move || {
        request(addr, "GET", &format!("/campaigns/{second_id}/summary"), &[], "")
    });
    // Let the summary connection be accepted before shutdown closes the
    // listener (its handler then blocks on the campaign, not the socket).
    std::thread::sleep(std::time::Duration::from_millis(100));

    let shutdown = request(addr, "POST", "/shutdown", &[], "");
    assert_eq!(shutdown.status, 200);

    // Drain semantics: the in-flight campaign runs to completion — the
    // stream keeps delivering rows after the shutdown and terminates
    // normally with the full matrix.
    while read_one_chunk(&mut reader, &mut streamed) {}
    assert_eq!(streamed.lines().count(), jobs, "every job of the in-flight campaign streamed");

    // The queued campaign was cancelled (or, if the in-flight one raced
    // to completion first, ran normally) — either way it answered.
    let second_outcome = second_summary.join().expect("summary reader");

    server.join().expect("server thread exits cleanly");

    // Both journals are resumable: the finished one replays complete,
    // and the queued one is a valid journal in EITHER drain outcome —
    // an empty fresh-start journal when cancelled (the torn-tail
    // contract of `ResumeLog`), a complete one when it slipped in.
    let first_log =
        ResumeLog::load(dir.join(format!("campaign-{first_id}.jsonl")), &first_fp).expect("first");
    assert_eq!(first_log.rows(), jobs);
    assert!(!first_log.truncated());

    let second_log = ResumeLog::load(dir.join(format!("campaign-{second_id}.jsonl")), &second_fp)
        .expect("queued journal still loads");
    if second_outcome.status == 500 {
        assert!(second_outcome.body.contains("cancelled by shutdown"), "{}", second_outcome.body);
        assert_eq!(second_log.rows(), 0, "cancelled before any job ran");
    } else {
        assert_eq!(second_outcome.status, 200, "{}", second_outcome.body);
        assert_eq!(second_log.rows(), 2, "raced to completion: fully journaled");
    }
    let resumed = CampaignEngine::new()
        .run_resumed(&campaign_from_spec(SPEC_B).expect("spec"), &mut [], second_log.records())
        .expect("queued campaign resumes offline from its journal");
    assert_eq!(resumed.summary.jobs_ok, 2);
    let _ = std::fs::remove_dir_all(&dir);
}
