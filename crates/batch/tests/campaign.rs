//! Acceptance suite for the campaign engine: artifact reuse, result
//! identity with individually-built sessions, and schema-valid JSONL.
//!
//! Budgets are deliberately tiny (short `T0`, `n = 1`, no verification)
//! so the matrix stays affordable in debug builds; the properties under
//! test — cache once-ness and bit-identical reports — do not depend on
//! problem size. The debug run covers the suite up to 3000 gates; the
//! full 13-circuit matrix (the largest analog costs minutes per job
//! unoptimized) is compiled behind `--release`, where CI executes it
//! explicitly.

use std::sync::Arc;

use bist_batch::{
    Campaign, CampaignEngine, CampaignOutcome, JobStatus, JsonlSink, MemorySink, ReportSink,
};
use subseq_bist::netlist::benchmarks;
use subseq_bist::tgen::TgenConfig;
use subseq_bist::{Backend, Obs, Registry, Session};

/// A short-`T0` configuration affordable on the biggest analogs.
fn tiny_tgen() -> TgenConfig {
    TgenConfig::new().max_length(12).burst_len(6).max_stall(2).compaction_budget(0)
}

fn campaign_over(names: &[&'static str]) -> Campaign {
    Campaign::new()
        .suite_circuits(names.iter().copied())
        .backends([Backend::Packed, Backend::Sharded { threads: 0, width: 256 }])
        .seeds([1999])
        .ns(vec![1])
        .tgen(tiny_tgen())
        .verify(false)
}

/// Runs the campaign and asserts the acceptance properties: every job
/// ok, every artifact computed exactly once, and every report identical
/// to an individually-built session (which parses, collapses and
/// generates from scratch).
fn assert_campaign_shares_and_matches(names: &[&'static str]) {
    let registry = Arc::new(Registry::new());
    let mut sink = MemorySink::new();
    let outcome: CampaignOutcome = {
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        CampaignEngine::new()
            .obs(Obs::with_registry(Arc::clone(&registry)))
            .run(&campaign_over(names), &mut sinks)
            .unwrap()
    };
    let circuits = names.len();
    let jobs = 2 * circuits;

    // Every job ran and succeeded.
    assert_eq!(outcome.summary.jobs_total, jobs);
    assert_eq!(outcome.summary.jobs_ok, jobs);
    assert_eq!(sink.records.len(), jobs);
    assert!(sink.records.iter().all(|r| r.status == JobStatus::Ok));

    // Each circuit was parsed exactly once, its gate tape compiled
    // exactly once, its fault universe collapsed exactly once and its T0
    // generated exactly once; every other request was served from the
    // shared cache. The tape assertion is the compiled-core acceptance
    // gate: a campaign never compiles a circuit twice.
    assert_eq!(outcome.cache.circuit_misses, circuits);
    assert_eq!(outcome.cache.tape_misses, circuits, "exactly one tape compile per circuit");
    assert_eq!(outcome.cache.fault_misses, circuits);
    assert_eq!(outcome.cache.t0_misses, circuits);
    assert_eq!(outcome.cache.circuit_hits, jobs - circuits);
    assert_eq!(outcome.cache.tape_hits, jobs - circuits);
    assert_eq!(outcome.cache.fault_hits, jobs - circuits);
    assert_eq!(outcome.cache.t0_hits, jobs - circuits);

    // The registry mirrors the cache stats exactly — telemetry is
    // deterministic, not sampled — and saw one pool/session observation
    // per job.
    let snap = registry.snapshot();
    for shelf in ["circuit", "tape", "fault", "t0"] {
        assert_eq!(
            snap.counter(&format!("cache.{shelf}.miss")),
            Some(circuits as u64),
            "exactly one cache.{shelf}.miss per circuit"
        );
        assert_eq!(snap.counter(&format!("cache.{shelf}.hit")), Some((jobs - circuits) as u64));
    }
    for hist in ["pool.queue_wait_us", "pool.exec_us", "job.artifacts_us", "session.fault_sim_us"] {
        assert_eq!(
            snap.histogram(hist).map(|h| h.count),
            Some(jobs as u64),
            "one {hist} observation per job"
        );
    }
    assert_eq!(snap.counter("pool.cancellations"), Some(0));
    assert_eq!(snap.gauge("pool.queue_depth"), Some(0), "queue drained");

    for &name in names {
        let reference = Session::builder()
            .suite_circuit(name)
            .backend(Backend::Packed)
            .ns(vec![1])
            .tgen(tiny_tgen())
            .seed(1999)
            .verify(false)
            .run()
            .unwrap();
        for record in sink.records.iter().filter(|r| r.circuit == name) {
            let report = outcome.report(record.job).unwrap();
            assert_eq!(report.t0(), reference.t0(), "{name} T0 differs");
            assert_eq!(
                report.coverage().times(),
                reference.coverage().times(),
                "{name} detection times differ"
            );
            assert_eq!(
                report.best().after.total_len,
                reference.best().after.total_len,
                "{name} selection differs"
            );
            assert_eq!(report.faults_total(), reference.faults_total());
        }
    }
}

#[test]
fn campaign_reuses_artifacts_and_matches_sessions_up_to_3000_gates() {
    let names: Vec<&'static str> = benchmarks::suite_up_to(3000).iter().map(|e| e.name).collect();
    assert_eq!(names.len(), 12);
    assert_campaign_shares_and_matches(&names);
}

/// The full 13-circuit acceptance matrix, including the `s35932` analog
/// whose unoptimized jobs take minutes — ignored in debug builds; CI
/// runs it optimized via
/// `cargo test --release -p bist-batch --test campaign full_13_circuit_suite`.
#[test]
#[cfg_attr(debug_assertions, ignore = "a35932 jobs take minutes unoptimized; run with --release")]
fn full_13_circuit_suite_campaign_reuses_artifacts_and_matches_sessions() {
    let names: Vec<&'static str> = benchmarks::suite().iter().map(|e| e.name).collect();
    assert_eq!(names.len(), 13);
    assert_campaign_shares_and_matches(&names);
}

#[test]
fn campaign_jsonl_stream_is_schema_valid() {
    let dir = std::env::temp_dir().join("bist_batch_campaign_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("campaign.jsonl");
    let campaign = Campaign::new()
        .suite_circuits(["s27", "a298"])
        .backends([Backend::Packed, Backend::Scalar])
        .ns(vec![1])
        .tgen(tiny_tgen())
        .verify(false);
    {
        let mut sink = JsonlSink::create(&path).unwrap();
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        let outcome = CampaignEngine::new().run(&campaign, &mut sinks).unwrap();
        assert_eq!(outcome.summary.jobs_ok, 4);
        assert_eq!(sink.rows(), 4);
    }
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(bist_batch::jsonl::validate_jsonl(&text).unwrap(), 4);
    assert!(text.lines().all(|l| l.contains("\"status\": \"ok\"")));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn summary_rolls_up_both_axes() {
    let campaign = Campaign::new()
        .suite_circuits(["s27", "a298", "a344"])
        .backends([Backend::Packed, Backend::Sharded { threads: 0, width: 256 }])
        .ns(vec![1])
        .tgen(tiny_tgen())
        .verify(false);
    let outcome = CampaignEngine::new().run(&campaign, &mut []).unwrap();
    assert_eq!(outcome.summary.circuits.len(), 3);
    assert_eq!(outcome.summary.backends.len(), 2);
    let rendered = outcome.summary.to_string();
    assert!(rendered.contains("a298"), "{rendered}");
    assert!(rendered.contains("sharded:0:256"), "{rendered}");
    assert!(outcome.summary.wall_seconds > 0.0);
    // Every circuit line saw both backends.
    assert!(outcome.summary.circuits.iter().all(|l| l.jobs == 2));
}

/// The summary embeds the registry snapshot verbatim, per-worker job
/// counters account for every job, and shelf residency reports exactly
/// the artifacts the campaign pinned.
#[test]
fn instrumented_campaign_embeds_snapshot_and_reports_residency() {
    let names = ["s27", "a298", "a344"];
    let registry = Arc::new(Registry::new());
    let outcome = CampaignEngine::new()
        .obs(Obs::with_registry(Arc::clone(&registry)))
        .run(&campaign_over(&names), &mut [])
        .unwrap();
    let jobs = 2 * names.len() as u64;

    // Nothing records between the engine's snapshot and ours, so the
    // embedded copy must be byte-for-byte the registry's final state.
    let snap = registry.snapshot();
    assert!(!snap.is_empty());
    assert_eq!(outcome.summary.metrics, snap);

    // Every job was executed by exactly one worker.
    let worker_jobs: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("pool.worker."))
        .map(|&(_, v)| v)
        .sum();
    assert_eq!(worker_jobs, jobs);

    // One resident artifact per circuit on every exercised shelf; the
    // compiled shelf stays empty because nothing was optimized.
    let residency = outcome.residency;
    for (shelf, label) in [
        (&residency.circuits, "circuits"),
        (&residency.tapes, "tapes"),
        (&residency.faults, "faults"),
        (&residency.t0s, "t0s"),
    ] {
        assert_eq!(shelf.entries, names.len(), "{label} resident entries");
        assert!(shelf.approx_bytes > 0, "{label} approx bytes");
    }
    assert_eq!(residency.compiled.entries, 0);
    assert!(residency.total_approx_bytes() > 0);
    let rendered = residency.to_string();
    assert!(rendered.contains("3 circuits"), "{rendered}");
}
