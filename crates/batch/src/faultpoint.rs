//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] is a seeded list of injection rules ([`FaultPoint`]s)
//! that the campaign engine and artifact cache consult at well-defined
//! sites: panic inside a worker's job closure, delay before a session
//! runs, a synthetic transient error, or a poisoned artifact-cache
//! compute. Without a plan every site is a `None` branch — production
//! campaigns pay nothing — and with one, injection is fully
//! deterministic: selection hashes the job/artifact key against the
//! plan's seed, and each rule fires a bounded number of times per key,
//! so a retried (or resumed) job heals and the chaos campaign converges
//! to the fault-free result. That convergence is exactly what the chaos
//! acceptance suite asserts.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Where a [`FaultPoint`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside the worker's job closure — exercises the
    /// `catch_unwind` quarantine (`pool.panics`).
    JobPanic,
    /// Sleep before the session runs — exercises per-job deadlines
    /// (`pool.timeouts`).
    JobDelay,
    /// Synthetic transient error before the session runs — exercises the
    /// retry loop (`pool.retries`).
    JobTransient,
    /// Poison an artifact-cache compute with a transient failure —
    /// exercises retryable shelf errors and recompute-on-miss.
    CachePoison,
}

/// One injection rule: a site, a key filter, and how often it fires.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    site: FaultSite,
    /// Substring of the job/artifact key this rule applies to (empty =
    /// every key).
    pattern: String,
    /// How many times the rule fires per matching key before it goes
    /// quiet (injected faults must heal for chaos runs to converge).
    fires: usize,
    /// Seeded per-mille selection rate (`None` = every matching key).
    rate_per_mille: Option<u32>,
    /// Sleep length for [`FaultSite::JobDelay`].
    delay: Duration,
}

impl FaultPoint {
    /// A rule at `site` for keys containing `pattern`, firing once per
    /// matching key.
    #[must_use]
    pub fn new(site: FaultSite, pattern: impl Into<String>) -> Self {
        FaultPoint {
            site,
            pattern: pattern.into(),
            fires: 1,
            rate_per_mille: None,
            delay: Duration::from_millis(50),
        }
    }

    /// How many times the rule fires per matching key (0 disarms it).
    #[must_use]
    pub fn fires(mut self, fires: usize) -> Self {
        self.fires = fires;
        self
    }

    /// Seeded selection: the rule considers only matching keys whose
    /// hash against the plan seed lands under `per_mille`/1000. The
    /// decision is a pure function of (seed, key), so it is identical
    /// across runs and processes.
    #[must_use]
    pub fn rate_per_mille(mut self, per_mille: u32) -> Self {
        self.rate_per_mille = Some(per_mille.min(1000));
        self
    }

    /// The sleep length of a [`FaultSite::JobDelay`] rule.
    #[must_use]
    pub fn delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }
}

/// A seeded, shareable set of injection rules with per-(rule, key) fire
/// accounting. See the module docs.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    points: Vec<FaultPoint>,
    /// Fire count per (rule index, key) — the healing mechanism.
    fired: Mutex<HashMap<(usize, String), usize>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with selection seed `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, points: Vec::new(), fired: Mutex::new(HashMap::new()) }
    }

    /// Adds a rule.
    #[must_use]
    pub fn point(mut self, point: FaultPoint) -> Self {
        self.points.push(point);
        self
    }

    /// Total injections performed so far, across all rules and keys.
    #[must_use]
    pub fn injected(&self) -> usize {
        self.fired.lock().expect("fault plan lock poisoned").values().sum()
    }

    /// Whether a [`FaultSite::JobPanic`] rule fires for `key` right now
    /// (and consumes one of its fires if so).
    #[must_use]
    pub fn should_panic(&self, key: &str) -> bool {
        self.fire(FaultSite::JobPanic, key).is_some()
    }

    /// The sleep a [`FaultSite::JobDelay`] rule injects for `key`, if
    /// one fires.
    #[must_use]
    pub fn delay_for(&self, key: &str) -> Option<Duration> {
        self.fire(FaultSite::JobDelay, key).map(|p| p.delay)
    }

    /// The message of a [`FaultSite::JobTransient`] error for `key`, if
    /// one fires.
    #[must_use]
    pub fn transient_error(&self, key: &str) -> Option<String> {
        self.fire(FaultSite::JobTransient, key)
            .map(|_| format!("injected transient failure at `{key}`"))
    }

    /// The message of a [`FaultSite::CachePoison`] failure for the
    /// artifact identified by `key`, if one fires.
    #[must_use]
    pub fn poison(&self, key: &str) -> Option<String> {
        self.fire(FaultSite::CachePoison, key)
            .map(|_| format!("injected poisoned artifact compute for `{key}`"))
    }

    /// The first armed rule at `site` matching `key`, consuming one of
    /// its fires. Selection (pattern + seeded rate) is stateless; only
    /// the fire count mutates.
    fn fire(&self, site: FaultSite, key: &str) -> Option<FaultPoint> {
        for (index, point) in self.points.iter().enumerate() {
            if point.site != site || point.fires == 0 {
                continue;
            }
            if !point.pattern.is_empty() && !key.contains(&point.pattern) {
                continue;
            }
            if let Some(per_mille) = point.rate_per_mille {
                if mix(self.seed ^ index as u64, key) % 1000 >= u64::from(per_mille) {
                    continue;
                }
            }
            let mut fired = self.fired.lock().expect("fault plan lock poisoned");
            let count = fired.entry((index, key.to_string())).or_insert(0);
            if *count >= point.fires {
                continue;
            }
            *count += 1;
            return Some(point.clone());
        }
        None
    }
}

/// FNV-1a over the key, finished with a splitmix64 round of the seed —
/// a stable, dependency-free selection hash.
fn mix(seed: u64, key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = h ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_per_key_and_heal() {
        let plan = FaultPlan::new(7).point(FaultPoint::new(FaultSite::JobPanic, "s27").fires(2));
        assert!(plan.should_panic("job:s27:packed"));
        assert!(plan.should_panic("job:s27:packed"));
        // Third attempt on the same key: healed.
        assert!(!plan.should_panic("job:s27:packed"));
        // A different matching key has its own budget.
        assert!(plan.should_panic("job:s27:scalar"));
        // Non-matching keys never fire.
        assert!(!plan.should_panic("job:a298:packed"));
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::new(1)
            .point(FaultPoint::new(FaultSite::JobDelay, "").delay(Duration::from_millis(5)))
            .point(FaultPoint::new(FaultSite::JobTransient, ""))
            .point(FaultPoint::new(FaultSite::CachePoison, "t0"));
        assert_eq!(plan.delay_for("anything"), Some(Duration::from_millis(5)));
        assert!(plan.transient_error("anything").unwrap().contains("transient"));
        assert!(plan.poison("t0:s27:1999").unwrap().contains("poisoned"));
        assert!(plan.poison("circuit:s27").is_none(), "pattern-filtered site");
        // Delay rule fired once for that key; it stays quiet now.
        assert_eq!(plan.delay_for("anything"), None);
        assert!(!plan.should_panic("anything"), "no panic rule installed");
    }

    #[test]
    fn seeded_rate_selection_is_deterministic_and_partial() {
        let select = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed)
                .point(FaultPoint::new(FaultSite::JobTransient, "").rate_per_mille(500));
            (0..64).map(|i| plan.transient_error(&format!("job:{i}")).is_some()).collect()
        };
        let a = select(42);
        let b = select(42);
        assert_eq!(a, b, "same seed, same selection");
        let hits = a.iter().filter(|&&x| x).count();
        assert!(hits > 0 && hits < 64, "rate 500/1000 selects a strict subset ({hits}/64)");
        let c = select(43);
        assert_ne!(a, c, "different seed, different selection");
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new(0);
        assert!(!plan.should_panic("k"));
        assert!(plan.delay_for("k").is_none());
        assert!(plan.transient_error("k").is_none());
        assert!(plan.poison("k").is_none());
        assert_eq!(plan.injected(), 0);
        // A zero-fires rule is installed but disarmed.
        let disarmed = FaultPlan::new(0).point(FaultPoint::new(FaultSite::JobPanic, "").fires(0));
        assert!(!disarmed.should_panic("k"));
    }
}
