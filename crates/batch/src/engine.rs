//! The concurrent campaign executor: a scoped-thread worker pool over a
//! bounded job queue, fed from the cost-ordered job schedule and drained
//! into [`ReportSink`]s as jobs complete.
//!
//! Jobs are dispatched longest-first: each job's cost is estimated as
//! *gate count × backend weight* ([`CampaignEngine::plan`]), so the most
//! expensive (circuit, backend) points start as early as possible and
//! cannot strand the pool behind a tail of quick jobs — the classic LPT
//! heuristic for shortening the critical path on multi-core hosts.
//! Scheduling is pure reordering of the dispatch sequence: outcomes come
//! back in matrix order and summaries are order-independent (pinned by
//! tests).
//!
//! Workers share one [`ArtifactCache`], so however the schedule lands on
//! the pool, each circuit is parsed once, its gate tape compiled once,
//! its fault universe collapsed once, and its `T0` generated once per
//! seed. A failing job cancels the rest of the campaign unless
//! `keep_going` is set; queued-but-unstarted jobs are then drained and
//! counted as skipped.

use crate::cache::{ArtifactCache, CachePolicy, CacheResidency, CacheStats};
use crate::campaign::{Campaign, CircuitSpec, JobSpec};
use crate::faultpoint::FaultPlan;
use crate::report::{CampaignSummary, JobMetrics, JobRecord, JobStatus, ReportSink};
use crate::BatchError;
use bist_obs::{CancelKind, CancelToken, Obs};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use subseq_bist::netlist::benchmarks;
use subseq_bist::{Backend, BistError, Session, SessionReport};

/// Per-job retry policy: how many attempts a transiently failing job
/// gets, and the deterministic backoff between them (attempt `k` sleeps
/// `backoff × k`). Only *transient* failures retry — permanent failures
/// (parse errors, assertion mismatches), panics and deadline timeouts
/// never do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (≥ 1; 1 = no
    /// retries).
    pub max_attempts: usize,
    /// Base backoff between attempts (deterministic, linearly scaled by
    /// the attempt number).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 1, backoff: Duration::from_millis(25) }
    }
}

/// Worker-pool configuration of a [`CampaignEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Bounded job-queue depth (≥ 1; producers block when it is full).
    pub queue_depth: usize,
    /// Keep running after a job fails instead of cancelling the rest.
    pub keep_going: bool,
    /// Per-job deadline: each attempt gets a
    /// [`CancelToken`] expiring this far in the future, checked by the
    /// simulation sweeps at chunk boundaries. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Retry policy for transiently failing jobs.
    pub retry: RetryPolicy,
    /// Residency policy of the shared artifact cache.
    pub cache_policy: CachePolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            queue_depth: 32,
            keep_going: false,
            deadline: None,
            retry: RetryPolicy::default(),
            cache_policy: CachePolicy::default(),
        }
    }
}

/// Why a job ultimately failed (after retries, if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A permanent failure: retrying cannot help (parse error,
    /// configuration error, simulation mismatch).
    Permanent,
    /// A transient failure that survived every allowed attempt.
    Transient,
    /// The job panicked; the worker quarantined it via `catch_unwind`
    /// and kept serving the queue.
    Panicked,
    /// The job's deadline expired (cooperative cancellation observed by
    /// the sweep, or detected after the attempt).
    TimedOut,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailureKind::Permanent => "permanent",
            FailureKind::Transient => "transient",
            FailureKind::Panicked => "panicked",
            FailureKind::TimedOut => "timed out",
        })
    }
}

/// A job's final failure: taxonomy, message and how many attempts ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The failure taxonomy bucket.
    pub kind: FailureKind,
    /// The underlying failure message.
    pub message: String,
    /// Attempts consumed (1 = failed on the first try).
    pub attempts: usize,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} after {} attempt", self.message, self.kind, self.attempts)?;
        if self.attempts != 1 {
            f.write_str("s")?;
        }
        f.write_str(")")
    }
}

/// One executed job: its spec, wall time and result.
#[derive(Debug)]
pub struct JobOutcome {
    /// The matrix point that ran.
    pub spec: JobSpec,
    /// Wall-clock seconds of the job: `queue_seconds + exec_seconds`.
    pub seconds: f64,
    /// Seconds the job sat in the bounded queue before a worker took it.
    pub queue_seconds: f64,
    /// Seconds the job executed (including artifact-cache waits and all
    /// retry attempts).
    pub exec_seconds: f64,
    /// The session report, or the typed failure.
    pub result: Result<SessionReport, JobFailure>,
}

/// Everything a finished campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Executed jobs in matrix order (skipped jobs are absent).
    pub outcomes: Vec<JobOutcome>,
    /// The roll-up (carries the telemetry snapshot when the engine ran
    /// with an active sink).
    pub summary: CampaignSummary,
    /// Artifact-cache hit/miss counters.
    pub cache: CacheStats,
    /// Artifact-cache residency (entries + approximate pinned bytes per
    /// shelf) at campaign end.
    pub residency: CacheResidency,
}

impl CampaignOutcome {
    /// The report of the job with matrix id `id`, if it ran and
    /// succeeded.
    #[must_use]
    pub fn report(&self, id: usize) -> Option<&SessionReport> {
        self.outcomes.iter().find(|o| o.spec.id == id).and_then(|o| o.result.as_ref().ok())
    }
}

/// The campaign executor. See the module docs.
///
/// # Example
///
/// ```
/// use bist_batch::{Campaign, CampaignEngine};
/// use subseq_bist::tgen::TgenConfig;
///
/// let campaign = Campaign::new()
///     .suite_circuits(["s27"])
///     .ns(vec![1])
///     .tgen(TgenConfig::new().max_length(16))
///     .seeds([7]);
/// let outcome = CampaignEngine::new().run(&campaign, &mut [])?;
/// assert_eq!(outcome.summary.jobs_ok, 1);
/// # Ok::<(), bist_batch::BatchError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CampaignEngine {
    config: EngineConfig,
    obs: Obs,
    /// Chaos injection plan shared with the worker pool and the artifact
    /// cache. `None` in production; see [`crate::faultpoint`].
    chaos: Option<Arc<FaultPlan>>,
    /// A caller-owned artifact cache shared across runs (and across
    /// engines). `None` = each run owns a fresh cache.
    cache: Option<Arc<ArtifactCache>>,
}

impl CampaignEngine {
    /// An engine with the default configuration (auto threads, queue
    /// depth 32, cancel on first error).
    #[must_use]
    pub fn new() -> Self {
        CampaignEngine::default()
    }

    /// Replaces the whole configuration.
    #[must_use]
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker-thread count (0 = one per available core).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the bounded job-queue depth. A depth of 0 is kept as
    /// written and rejected with [`BatchError::Config`] at run time —
    /// server configs must not be silently rewritten.
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Keep running after job failures (they are recorded and rolled up
    /// instead of cancelling the campaign).
    #[must_use]
    pub fn keep_going(mut self, on: bool) -> Self {
        self.config.keep_going = on;
        self
    }

    /// Sets the per-job deadline: each attempt gets a cancellation token
    /// expiring this far in the future, observed by the simulation
    /// sweeps at chunk boundaries (`pool.timeouts` counts expiries).
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.config.deadline = Some(deadline);
        self
    }

    /// Sets the retry policy for transiently failing jobs
    /// (`pool.retries` counts re-attempts).
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Sets the artifact cache's residency policy
    /// (`cache.<shelf>.evictions` counts what the byte budget evicts).
    #[must_use]
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.config.cache_policy = policy;
        self
    }

    /// Installs a chaos [`FaultPlan`]: the worker pool consults it per
    /// job attempt (panic / delay / transient-error sites) and the
    /// artifact cache per compute (poison site). Testing only — without
    /// a plan every injection site is a no-op branch.
    #[must_use]
    pub fn chaos(mut self, plan: Arc<FaultPlan>) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Shares a caller-owned [`ArtifactCache`] with every run of this
    /// engine (and with any other engine holding the same `Arc`). Cache
    /// keys are campaign-independent — circuit key, seed, `TgenConfig`
    /// and pass-set key — so a process-lifetime cache lets campaigns
    /// reuse each other's parses, tapes, collapses and `T0`s under the
    /// cache's own [`CachePolicy`] byte budget. When a shared cache is
    /// installed, the engine's [`cache_policy`](Self::cache_policy) and
    /// chaos plan do not apply to it: the cache keeps the policy and
    /// telemetry it was built with.
    #[must_use]
    pub fn shared_cache(mut self, cache: Arc<ArtifactCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches a telemetry sink. The worker pool records queue-depth,
    /// queue-wait and execute histograms (`pool.*`), the shared artifact
    /// cache records hit/miss counters and residency gauges (`cache.*`),
    /// and every session runs fully instrumented (`session.*`, `core.*`,
    /// `sim.*`). The final [`MetricsSnapshot`](bist_obs::MetricsSnapshot)
    /// is embedded in the returned summary. Observation-only: results
    /// are bit-identical with or without a sink.
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The cost-ordered dispatch schedule of `campaign`: the expanded job
    /// matrix sorted by decreasing estimated cost (gate count × backend
    /// weight), with the matrix id as the deterministic tie-break. This
    /// is exactly the order [`run`](Self::run) feeds the worker pool.
    ///
    /// # Errors
    ///
    /// [`BatchError::Config`] for invalid campaigns (as
    /// [`Campaign::expand`]).
    pub fn plan(&self, campaign: &Campaign) -> Result<Vec<JobSpec>, BatchError> {
        let mut jobs = campaign.expand()?;
        // Memoize the per-spec gate estimate: one registry/filesystem
        // probe per distinct circuit, not per job.
        let mut gates: HashMap<String, f64> = HashMap::new();
        let mut cost = |job: &JobSpec| -> f64 {
            let g = *gates.entry(job.circuit.key()).or_insert_with(|| estimate_gates(&job.circuit));
            g * backend_weight(job.backend)
        };
        let mut keyed: Vec<(f64, JobSpec)> = jobs.drain(..).map(|j| (cost(&j), j)).collect();
        keyed.sort_by(|(ca, a), (cb, b)| {
            cb.partial_cmp(ca).unwrap_or(std::cmp::Ordering::Equal).then(a.id.cmp(&b.id))
        });
        Ok(keyed.into_iter().map(|(_, j)| j).collect())
    }

    /// Expands and [`plan`](Self::plan)s `campaign`, executes every job
    /// on the worker pool in cost order (longest first), streaming a
    /// [`JobRecord`] per completed job to every sink (in completion
    /// order), then returns the outcomes (back in matrix order), the
    /// summary and the cache counters.
    ///
    /// # Errors
    ///
    /// [`BatchError::Config`] for invalid campaigns; the first job's
    /// error (as [`BatchError::JobFailed`]) when a job fails and
    /// `keep_going` is off; sink errors are propagated and also cancel
    /// the campaign.
    pub fn run(
        &self,
        campaign: &Campaign,
        sinks: &mut [&mut dyn ReportSink],
    ) -> Result<CampaignOutcome, BatchError> {
        self.run_resumed(campaign, sinks, &[])
    }

    /// [`run`](Self::run), skipping jobs already completed by a previous
    /// (possibly crashed) run of the same campaign. `replayed` carries
    /// the completed records — typically loaded from a JSONL journal via
    /// [`ResumeLog`](crate::ResumeLog) — keyed by matrix id; matching
    /// jobs are not re-executed and not re-streamed to sinks, but their
    /// records are merged into the final [`CampaignSummary`], so a
    /// killed-and-resumed campaign rolls up identically to an
    /// uninterrupted one.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_resumed(
        &self,
        campaign: &Campaign,
        sinks: &mut [&mut dyn ReportSink],
        replayed: &[JobRecord],
    ) -> Result<CampaignOutcome, BatchError> {
        let mut jobs = self.plan(campaign)?;
        let jobs_total = jobs.len();
        // Skip only ids that exist in this plan — a journal from another
        // campaign shape cannot mark anything done.
        let planned: HashSet<usize> = jobs.iter().map(|j| j.id).collect();
        let replayed: Vec<&JobRecord> =
            replayed.iter().filter(|r| planned.contains(&r.job)).collect();
        if !replayed.is_empty() {
            let done: HashSet<usize> = replayed.iter().map(|r| r.job).collect();
            jobs.retain(|j| !done.contains(&j.id));
        }
        if self.config.queue_depth == 0 {
            return Err(BatchError::Config(
                "queue_depth must be ≥ 1 (a zero-depth bounded queue can admit no jobs)"
                    .to_string(),
            ));
        }
        let keep_going = self.config.keep_going;
        let threads = resolve_threads(self.config.threads).min(jobs.len().max(1));

        let obs = self.obs.clone();
        let owned_cache;
        let cache: &ArtifactCache = match &self.cache {
            Some(shared) => shared,
            None => {
                owned_cache =
                    ArtifactCache::with_config(&obs, self.config.cache_policy, self.chaos.clone());
                &owned_cache
            }
        };
        let cancel = AtomicBool::new(false);
        let started = Instant::now();

        // Pool telemetry: pre-resolved handles, no-op without a sink.
        let queue_gauge = obs.gauge("pool.queue_depth");
        let queue_wait = obs.histogram("pool.queue_wait_us");
        let exec_hist = obs.histogram("pool.exec_us");
        let cancelled = obs.counter("pool.cancellations");
        let panics = obs.counter("pool.panics");
        let retries = obs.counter("pool.retries");
        let timeouts = obs.counter("pool.timeouts");

        // Each job travels with its enqueue timestamp, so the worker can
        // split wall time into queue wait vs execution.
        let (job_tx, job_rx) = mpsc::sync_channel::<(JobSpec, Instant)>(self.config.queue_depth);
        let job_rx = Mutex::new(job_rx);
        let (done_tx, done_rx) = mpsc::channel::<JobOutcome>();

        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs_total);
        let mut records: Vec<JobRecord> = Vec::with_capacity(jobs_total);
        let mut sink_error: Option<BatchError> = None;

        std::thread::scope(|scope| {
            // Producer: feeds the bounded queue until done or cancelled.
            scope.spawn(|| {
                for job in jobs {
                    if cancel.load(Ordering::Relaxed) {
                        break;
                    }
                    if job_tx.send((job, Instant::now())).is_err() {
                        break;
                    }
                    queue_gauge.add(1);
                }
                drop(job_tx);
            });
            // Workers: pull jobs, run sessions over the shared cache.
            for worker in 0..threads {
                let done_tx = done_tx.clone();
                let jobs_done = obs.counter(&format!("pool.worker.{worker}.jobs"));
                scope.spawn(|| {
                    let done_tx = done_tx; // move the clone, share the rest
                    let jobs_done = jobs_done;
                    loop {
                        let received = job_rx.lock().expect("queue lock poisoned").recv();
                        let Ok((job, enqueued)) = received else { break };
                        queue_gauge.sub(1);
                        let queue_seconds = enqueued.elapsed().as_secs_f64();
                        if cancel.load(Ordering::Relaxed) {
                            cancelled.inc();
                            continue; // drain: counted as skipped
                        }
                        queue_wait.record(micros(queue_seconds));
                        let job_started = Instant::now();
                        let result = run_job_isolated(
                            cache,
                            campaign,
                            &job,
                            &obs,
                            &self.config,
                            self.chaos.as_deref(),
                            &panics,
                            &retries,
                            &timeouts,
                        );
                        let exec_seconds = job_started.elapsed().as_secs_f64();
                        exec_hist.record(micros(exec_seconds));
                        jobs_done.inc();
                        if result.is_err() && !keep_going {
                            cancel.store(true, Ordering::Relaxed);
                        }
                        let outcome = JobOutcome {
                            spec: job,
                            seconds: queue_seconds + exec_seconds,
                            queue_seconds,
                            exec_seconds,
                            result,
                        };
                        if done_tx.send(outcome).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(done_tx);
            // Collector (this thread): stream records to sinks as jobs
            // complete.
            for outcome in done_rx {
                let record = record_of(&outcome);
                for sink in sinks.iter_mut() {
                    if sink_error.is_none() {
                        if let Err(e) = sink.accept(&record) {
                            cancel.store(true, Ordering::Relaxed);
                            sink_error = Some(e);
                        }
                    }
                }
                records.push(record);
                outcomes.push(outcome);
            }
        });

        for sink in sinks.iter_mut() {
            if let Err(e) = sink.finish() {
                sink_error.get_or_insert(e);
            }
        }
        if let Some(e) = sink_error {
            return Err(e);
        }

        outcomes.sort_by_key(|o| o.spec.id);
        if !keep_going {
            if let Some(failed) = outcomes.iter().find(|o| o.result.is_err()) {
                return Err(BatchError::JobFailed {
                    job: failed.spec.id,
                    circuit: failed.spec.circuit.label(),
                    message: failed.result.as_ref().unwrap_err().to_string(),
                });
            }
        }
        // Merge replayed records so a resumed campaign rolls up exactly
        // like an uninterrupted one (axis grouping is order-independent;
        // sorting keeps the record list deterministic anyway).
        records.extend(replayed.iter().map(|r| (*r).clone()));
        records.sort_by_key(|r| r.job);
        let mut summary =
            CampaignSummary::build(&records, jobs_total, started.elapsed().as_secs_f64());
        summary.metrics = obs.snapshot();
        Ok(CampaignOutcome {
            outcomes,
            summary,
            cache: cache.stats(),
            residency: cache.residency(),
        })
    }
}

/// Resolves a requested thread count: 0 = one per available core (1 if
/// the host cannot say). The single source of truth for every
/// `available_parallelism` fallback in this module — the worker pool and
/// the scheduler's backend cost weights must agree on what "auto" means.
fn resolve_threads(requested: usize) -> usize {
    match requested {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        n => n,
    }
}

/// Seconds → whole microseconds for histogram recording.
fn micros(seconds: f64) -> u64 {
    if seconds <= 0.0 {
        0
    } else {
        (seconds * 1e6) as u64
    }
}

/// Estimated gate count of a circuit spec, without parsing anything:
/// suite circuits come straight from the benchmark registry; `.bench`
/// files are sized from their byte length (a gate line of the format
/// runs ~25 bytes). Only relative magnitudes matter — the estimate
/// ranks jobs, it never changes results.
fn estimate_gates(spec: &CircuitSpec) -> f64 {
    match spec {
        CircuitSpec::Suite(name) => {
            benchmarks::suite().iter().find(|e| e.name == name).map_or(1000.0, |e| e.gates as f64)
        }
        CircuitSpec::File(path) => {
            std::fs::metadata(path).map_or(1000.0, |m| (m.len() as f64 / 25.0).max(1.0))
        }
    }
}

/// Relative per-gate cost weight of a backend, normalized to the packed
/// 64-lane engine. The dominant term is stream passes per fault: the
/// scalar engine runs one fault per pass where packed64 runs 63; a
/// sharded engine at width `w` and `t` threads advances `(w - 1) · t`
/// faults per wall-clock pass.
fn backend_weight(backend: Backend) -> f64 {
    match backend {
        Backend::Packed => 1.0,
        Backend::Scalar => 63.0,
        Backend::Sharded { threads, width } => {
            let threads = resolve_threads(threads) as f64;
            let lanes = width.saturating_sub(1).max(1) as f64;
            63.0 / (lanes * threads)
        }
    }
}

/// The stable chaos/injection key of a job: every attempt of the same
/// matrix point maps to the same key, across runs and processes.
fn job_key(job: &JobSpec) -> String {
    format!("job:{}:{}:{}:{}", job.circuit.label(), job.backend_label(), job.scheme.label, job.seed)
}

/// Whether a retry could plausibly clear this failure: transient
/// artifact failures (the cache released their slot) and
/// interrupted/timed-out I/O. Parse errors, config errors and
/// simulation mismatches are permanent.
fn is_transient(e: &BatchError) -> bool {
    match e {
        BatchError::Artifact { transient, .. } => *transient,
        BatchError::Io(io) | BatchError::Bist(BistError::Io(io)) => matches!(
            io.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
        ),
        _ => false,
    }
}

/// The human-readable payload of a caught panic.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker job panicked".to_string()
    }
}

/// Runs one job with the full resilience envelope: chaos injection,
/// `catch_unwind` panic quarantine, a per-attempt deadline token, and
/// deterministic retries for transient failures. Exactly one of
/// `pool.panics` / `pool.timeouts` is bumped for a quarantined/expired
/// job; `pool.retries` counts every re-attempt.
#[allow(clippy::too_many_arguments)]
fn run_job_isolated(
    cache: &ArtifactCache,
    campaign: &Campaign,
    job: &JobSpec,
    obs: &Obs,
    config: &EngineConfig,
    chaos: Option<&FaultPlan>,
    panics: &bist_obs::CounterHandle,
    retries: &bist_obs::CounterHandle,
    timeouts: &bist_obs::CounterHandle,
) -> Result<SessionReport, JobFailure> {
    let key = job_key(job);
    let max_attempts = config.retry.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        attempt += 1;
        let token = config.deadline.map(|d| CancelToken::with_deadline(Instant::now() + d));
        let attempt_obs = match &token {
            Some(t) => obs.with_cancel(t.clone()),
            None => obs.clone(),
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(plan) = chaos {
                if let Some(delay) = plan.delay_for(&key) {
                    std::thread::sleep(delay);
                }
                if plan.should_panic(&key) {
                    panic!("injected panic at `{key}`");
                }
                if let Some(message) = plan.transient_error(&key) {
                    return Err(BatchError::Artifact {
                        artifact: format!("job `{key}`"),
                        message,
                        transient: true,
                    });
                }
            }
            run_job(cache, campaign, job, &attempt_obs)
        }));
        let error = match caught {
            Err(payload) => {
                // Quarantine: the worker survives, the job is a typed
                // failure. Panics never retry — the job's state is
                // unknown.
                panics.inc();
                return Err(JobFailure {
                    kind: FailureKind::Panicked,
                    message: panic_message(payload.as_ref()),
                    attempts: attempt,
                });
            }
            Ok(Ok(report)) => return Ok(report),
            Ok(Err(e)) => e,
        };
        // An expired deadline classifies as a timeout regardless of how
        // the error surfaced (the sweep's cooperative Cancelled error,
        // or any failure racing the expiry).
        if token.as_ref().is_some_and(|t| t.kind() == Some(CancelKind::DeadlineExpired)) {
            timeouts.inc();
            return Err(JobFailure {
                kind: FailureKind::TimedOut,
                message: error.to_string(),
                attempts: attempt,
            });
        }
        let transient = is_transient(&error);
        if transient && attempt < max_attempts {
            retries.inc();
            // Deterministic linear backoff: attempt k sleeps backoff×k.
            std::thread::sleep(config.retry.backoff * u32::try_from(attempt).unwrap_or(u32::MAX));
            continue;
        }
        return Err(JobFailure {
            kind: if transient { FailureKind::Transient } else { FailureKind::Permanent },
            message: error.to_string(),
            attempts: attempt,
        });
    }
}

/// Runs one job through the [`Session`] facade over the shared cache.
/// The artifact-assembly phase gets its own `job.artifacts_us` span so
/// per-job execute time reconciles against the session's stage spans.
fn run_job(
    cache: &ArtifactCache,
    campaign: &Campaign,
    job: &JobSpec,
    obs: &Obs,
) -> Result<SessionReport, BatchError> {
    let span = obs.span("job.artifacts_us", format!("job={}", job.id));
    let artifacts = cache.artifacts_for_optimized(
        &job.circuit,
        job.seed,
        campaign.tgen_config(),
        campaign.optimize_options(),
    )?;
    drop(span);
    Session::builder()
        .with_artifacts(artifacts)
        .backend(job.backend)
        .ns(job.scheme.ns.clone())
        .postprocess(job.scheme.postprocess)
        .seed(job.seed)
        .verify(campaign.verifies())
        .obs(obs.clone())
        .run()
        .map_err(BatchError::Bist)
}

/// Flattens one outcome into the sink/record form.
fn record_of(outcome: &JobOutcome) -> JobRecord {
    let spec = &outcome.spec;
    let base = JobRecord {
        job: spec.id,
        circuit: spec.circuit.label(),
        backend: spec.backend_label(),
        scheme: spec.scheme.label.clone(),
        seed: spec.seed,
        status: JobStatus::Ok,
        seconds: outcome.seconds,
        queue_seconds: outcome.queue_seconds,
        exec_seconds: outcome.exec_seconds,
        metrics: None,
        error: None,
    };
    match &outcome.result {
        Ok(report) => {
            let best = report.best();
            let (scheme_cost, monolithic_cost) = report.memory_costs();
            JobRecord {
                metrics: Some(JobMetrics {
                    engine: report.backend_name().to_string(),
                    faults_total: report.faults_total(),
                    faults_detected: report.coverage().detected_count(),
                    t0_len: report.t0().len(),
                    n: best.n,
                    set_count: best.after.count,
                    total_len: best.after.total_len,
                    max_len: best.after.max_len,
                    applied_test_len: best.applied_test_len(),
                    loaded_fraction: report.loaded_fraction(),
                    scheme_data_bits: scheme_cost.data_bits,
                    monolithic_data_bits: monolithic_cost.data_bits,
                    gates_removed: report.gates_removed(),
                    verified: report.verified(),
                }),
                ..base
            }
        }
        Err(failure) => {
            JobRecord { status: JobStatus::Failed, error: Some(failure.to_string()), ..base }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::MemorySink;
    use subseq_bist::tgen::TgenConfig;
    use subseq_bist::Backend;

    fn tiny_tgen() -> TgenConfig {
        TgenConfig::new().max_length(24).compaction_budget(20)
    }

    #[test]
    fn engine_runs_a_small_matrix_and_streams_records() {
        let campaign = Campaign::new()
            .suite_circuits(["s27"])
            .backends([Backend::Packed, Backend::Scalar])
            .seeds([1, 2])
            .ns(vec![1])
            .tgen(tiny_tgen());
        let mut sink = MemorySink::new();
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        let outcome = CampaignEngine::new().threads(2).run(&campaign, &mut sinks).unwrap();
        assert_eq!(outcome.summary.jobs_total, 4);
        assert_eq!(outcome.summary.jobs_ok, 4);
        assert_eq!(outcome.summary.jobs_skipped, 0);
        assert_eq!(sink.records.len(), 4);
        // Outcomes come back in matrix order regardless of completion.
        let ids: Vec<usize> = outcome.outcomes.iter().map(|o| o.spec.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // One parse + one collapse total; T0 computed once per seed.
        assert_eq!(outcome.cache.circuit_misses, 1);
        assert_eq!(outcome.cache.fault_misses, 1);
        assert_eq!(outcome.cache.t0_misses, 2);
        assert_eq!(outcome.cache.circuit_hits, 3);
        // report() resolves by matrix id. Jobs 0/1 share seed 1's cached
        // T0 (coverage equality would be tautological), but Procedure 1
        // re-simulates expansions with each job's own engine — so equal
        // selections really do exercise packed-vs-scalar agreement.
        let a = outcome.report(0).unwrap();
        let b = outcome.report(1).unwrap();
        assert_eq!(a.backend_name(), "packed64");
        assert_eq!(b.backend_name(), "scalar");
        assert_eq!(a.best().after.total_len, b.best().after.total_len);
        assert_eq!(a.best().after.max_len, b.best().after.max_len);
    }

    #[test]
    fn optimized_campaign_is_bit_identical_and_shares_compiles() {
        use subseq_bist::CompileOptions;

        let base = Campaign::new()
            .suite_circuits(["s27", "a298"])
            .seeds([1, 2])
            .ns(vec![1])
            .tgen(tiny_tgen());
        let plain = CampaignEngine::new().threads(2).run(&base, &mut []).unwrap();
        let optimized = CampaignEngine::new()
            .threads(2)
            .run(&base.clone().optimize(CompileOptions::all()), &mut [])
            .unwrap();
        assert_eq!(optimized.summary.jobs_ok, plain.summary.jobs_ok);
        // One staged compile per circuit, shared by every job on it.
        assert_eq!(optimized.cache.compiled_misses, 2);
        assert_eq!(optimized.cache.compiled_hits, 2);
        assert_eq!(plain.cache.compiled_misses + plain.cache.compiled_hits, 0);
        for id in 0..plain.summary.jobs_total {
            let a = plain.report(id).unwrap();
            let b = optimized.report(id).unwrap();
            assert_eq!(a.t0(), b.t0(), "job {id}: T0 stays baseline-generated");
            assert_eq!(a.coverage(), b.coverage(), "job {id}");
            assert_eq!(a.best().after.total_len, b.best().after.total_len, "job {id}");
            assert_eq!(a.best().after.max_len, b.best().after.max_len, "job {id}");
            assert_eq!(b.verified(), Some(true), "job {id}");
            assert_eq!(a.gates_removed(), 0);
        }
        // The roll-up surfaces each circuit's removal count.
        let removed: usize = optimized.summary.circuits.iter().map(|l| l.gates_removed).sum();
        let reported = (0..plain.summary.jobs_total)
            .map(|id| optimized.report(id).unwrap().gates_removed())
            .max()
            .unwrap_or(0);
        assert!(removed >= reported);
    }

    #[test]
    fn failing_job_cancels_unless_keep_going() {
        let campaign =
            Campaign::new().suite_circuits(["nope", "s27"]).ns(vec![1]).tgen(tiny_tgen());
        // Default: first error cancels and surfaces.
        let err = CampaignEngine::new().threads(1).run(&campaign, &mut []).unwrap_err();
        match &err {
            BatchError::JobFailed { circuit, message, .. } => {
                assert_eq!(circuit, "nope");
                assert!(message.contains("unknown suite circuit"), "{message}");
            }
            other => panic!("expected JobFailed, got {other:?}"),
        }
        // keep_going: the failure is recorded, the rest still runs.
        let mut sink = MemorySink::new();
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        let outcome =
            CampaignEngine::new().threads(1).keep_going(true).run(&campaign, &mut sinks).unwrap();
        assert_eq!(outcome.summary.jobs_ok, 1);
        assert_eq!(outcome.summary.jobs_failed, 1);
        assert_eq!(sink.records.len(), 2);
        assert!(sink.records.iter().any(|r| r.status == JobStatus::Failed));
    }

    #[test]
    fn cancellation_skips_queued_jobs() {
        // One worker, failing first job, long tail: everything after the
        // failure is drained as skipped (the exact count depends on
        // timing only through the already-dequeued job).
        let campaign = Campaign::new()
            .suite_circuits(["nope", "s27", "s27", "s27"])
            .seeds([1, 2])
            .ns(vec![1])
            .tgen(tiny_tgen());
        let err = CampaignEngine::new().threads(1).queue_depth(1).run(&campaign, &mut []);
        assert!(err.is_err());
    }

    #[test]
    fn plan_orders_jobs_by_decreasing_cost() {
        // a5378 (5378 gates) must outrank s27 (10 gates); within a
        // circuit, the scalar engine outranks packed which outranks a
        // wide sharded engine.
        let campaign = Campaign::new()
            .suite_circuits(["s27", "a5378"])
            .backends([
                Backend::Sharded { threads: 1, width: 512 },
                Backend::Packed,
                Backend::Scalar,
            ])
            .ns(vec![1])
            .tgen(tiny_tgen());
        let plan = CampaignEngine::new().plan(&campaign).unwrap();
        assert_eq!(plan.len(), 6);
        // Most expensive first: the big analog under the scalar engine.
        assert_eq!(plan[0].circuit.key(), "a5378", "{plan:?}");
        assert_eq!(plan[0].backend_label(), "scalar");
        // Cheapest last: s27 on the widest sharded engine.
        assert_eq!(plan[5].circuit.key(), "s27", "{plan:?}");
        assert_eq!(plan[5].backend_label(), "sharded:1:512");
        // Within each circuit: scalar, then packed, then sharded.
        for key in ["a5378", "s27"] {
            let labels: Vec<String> = plan
                .iter()
                .filter(|j| j.circuit.key() == key)
                .map(JobSpec::backend_label)
                .collect();
            assert_eq!(labels, ["scalar", "packed", "sharded:1:512"], "{plan:?}");
        }
        // Matrix ids are untouched by scheduling.
        let mut ids: Vec<usize> = plan.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn plan_breaks_cost_ties_by_matrix_id() {
        let campaign =
            Campaign::new().suite_circuits(["s27"]).seeds([1, 2, 3]).ns(vec![1]).tgen(tiny_tgen());
        let plan = CampaignEngine::new().plan(&campaign).unwrap();
        let ids: Vec<usize> = plan.iter().map(|j| j.id).collect();
        assert_eq!(ids, vec![0, 1, 2], "equal-cost jobs keep matrix order");
    }

    #[test]
    fn summary_and_reports_are_independent_of_dispatch_order() {
        // The same campaign run with different worker counts (hence
        // different completion interleavings over the cost-ordered
        // schedule) must produce identical outcomes and identical
        // summaries up to wall/job timing.
        let campaign = Campaign::new()
            .suite_circuits(["s27", "a298"])
            .backends([Backend::Packed, Backend::Scalar])
            .seeds([1])
            .ns(vec![1])
            .tgen(tiny_tgen());
        let mut summaries = Vec::new();
        for threads in [1, 3] {
            let mut sink = MemorySink::new();
            let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
            let outcome =
                CampaignEngine::new().threads(threads).run(&campaign, &mut sinks).unwrap();
            // Outcomes come back in matrix order regardless of schedule.
            let ids: Vec<usize> = outcome.outcomes.iter().map(|o| o.spec.id).collect();
            assert_eq!(ids, vec![0, 1, 2, 3]);
            summaries.push(outcome.summary);
        }
        let (a, b) = (&summaries[0], &summaries[1]);
        assert_eq!(a.jobs_total, b.jobs_total);
        assert_eq!(a.jobs_ok, b.jobs_ok);
        assert_eq!(a.circuits.len(), b.circuits.len());
        for (la, lb) in a.circuits.iter().zip(&b.circuits) {
            assert_eq!(la.label, lb.label);
            assert_eq!(la.jobs, lb.jobs);
            assert!((la.mean_coverage - lb.mean_coverage).abs() < 1e-12);
            assert!((la.mean_loaded_fraction - lb.mean_loaded_fraction).abs() < 1e-12);
            assert!((la.mean_storage_ratio - lb.mean_storage_ratio).abs() < 1e-12);
        }
        for (la, lb) in a.backends.iter().zip(&b.backends) {
            assert_eq!(la.label, lb.label);
            assert_eq!(la.jobs, lb.jobs);
        }
    }

    #[test]
    fn backend_weights_rank_sensibly() {
        assert!(backend_weight(Backend::Scalar) > backend_weight(Backend::Packed));
        assert!(
            backend_weight(Backend::Packed)
                > backend_weight(Backend::Sharded { threads: 1, width: 256 })
        );
        assert!(
            backend_weight(Backend::Sharded { threads: 1, width: 256 })
                > backend_weight(Backend::Sharded { threads: 4, width: 256 })
        );
        assert!(backend_weight(Backend::Sharded { threads: 0, width: 64 }) > 0.0);
        // Unknown suite names and missing files fall back to a positive
        // default instead of panicking.
        assert!(estimate_gates(&CircuitSpec::Suite("nope".into())) > 0.0);
        assert!(estimate_gates(&CircuitSpec::File("/no/such/file.bench".into())) > 0.0);
    }

    #[test]
    fn zero_queue_depth_is_a_typed_error_not_a_silent_clamp() {
        // The builder keeps the caller's value as written…
        let engine = CampaignEngine::new().queue_depth(0);
        assert_eq!(engine.config.queue_depth, 0, "no silent rewrite");
        // …and the run surfaces it as a configuration error instead of
        // quietly running with depth 1.
        let campaign = Campaign::new().suite_circuits(["s27"]).ns(vec![1]).tgen(tiny_tgen());
        let err = engine.run(&campaign, &mut []).unwrap_err();
        match err {
            BatchError::Config(msg) => assert!(msg.contains("queue_depth"), "{msg}"),
            other => panic!("expected Config error, got {other:?}"),
        }
        let cfg = EngineConfig::default();
        assert_eq!(cfg.threads, 0);
        assert!(!cfg.keep_going);
        assert_eq!(cfg.deadline, None);
        assert_eq!(cfg.retry.max_attempts, 1, "no retries by default");
        assert_eq!(cfg.cache_policy, CachePolicy::unbounded());
    }

    #[test]
    fn resolve_threads_is_the_single_auto_fallback() {
        assert!(resolve_threads(0) >= 1, "auto resolves to at least one core");
        assert_eq!(resolve_threads(3), 3, "explicit counts pass through");
        // The scheduler's sharded-backend weight uses the same fallback,
        // so "auto" cost estimates agree with the pool's "auto" width.
        let auto = resolve_threads(0) as f64;
        let weight = backend_weight(Backend::Sharded { threads: 0, width: 64 });
        assert!((weight - 63.0 / (63.0 * auto)).abs() < 1e-12);
    }

    #[test]
    fn shared_cache_is_reused_across_runs_and_engines() {
        let campaign =
            Campaign::new().suite_circuits(["s27"]).seeds([1]).ns(vec![1]).tgen(tiny_tgen());
        let obs = Obs::noop();
        let cache =
            Arc::new(ArtifactCache::with_config(&obs, crate::CachePolicy::unbounded(), None));
        let first = CampaignEngine::new()
            .threads(1)
            .shared_cache(Arc::clone(&cache))
            .run(&campaign, &mut [])
            .unwrap();
        assert_eq!(first.cache.circuit_misses, 1);
        assert_eq!(first.cache.t0_misses, 1);
        // A different engine, same cache: everything is warm, so the
        // second campaign records hits where the first recorded misses.
        let second = CampaignEngine::new()
            .threads(1)
            .shared_cache(Arc::clone(&cache))
            .run(&campaign, &mut [])
            .unwrap();
        assert_eq!(second.cache.circuit_misses, 1, "no new parse");
        assert_eq!(second.cache.t0_misses, 1, "no new T0 generation");
        assert!(second.cache.circuit_hits > first.cache.circuit_hits);
        assert_eq!(first.summary.digest(), second.summary.digest(), "warm == cold results");
    }

    #[test]
    fn transient_failures_retry_and_heal() {
        use crate::faultpoint::{FaultPoint, FaultSite};

        // One injected transient error per job key: with retries enabled
        // the campaign completes cleanly (no keep_going needed), and the
        // retry counter records exactly the injected failures.
        let campaign =
            Campaign::new().suite_circuits(["s27"]).seeds([1, 2]).ns(vec![1]).tgen(tiny_tgen());
        let plan = Arc::new(
            crate::faultpoint::FaultPlan::new(11)
                .point(FaultPoint::new(FaultSite::JobTransient, "s27")),
        );
        let registry = Arc::new(bist_obs::Registry::new());
        let outcome = CampaignEngine::new()
            .threads(2)
            .retry(RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(1) })
            .chaos(Arc::clone(&plan))
            .obs(Obs::with_registry(Arc::clone(&registry)))
            .run(&campaign, &mut [])
            .unwrap();
        assert_eq!(outcome.summary.jobs_ok, 2);
        assert_eq!(outcome.summary.jobs_failed, 0);
        assert_eq!(plan.injected(), 2, "one transient per job key");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.retries"), Some(2));
        assert_eq!(snap.counter("pool.panics"), Some(0));
        assert_eq!(snap.counter("pool.timeouts"), Some(0));
    }

    #[test]
    fn exhausted_retries_surface_a_transient_failure() {
        use crate::faultpoint::{FaultPoint, FaultSite};

        // Three injected transients per key but only two attempts: the
        // job fails with the Transient taxonomy and its attempt count.
        let campaign = Campaign::new().suite_circuits(["s27"]).ns(vec![1]).tgen(tiny_tgen());
        let plan = Arc::new(
            crate::faultpoint::FaultPlan::new(2)
                .point(FaultPoint::new(FaultSite::JobTransient, "").fires(3)),
        );
        let outcome = CampaignEngine::new()
            .threads(1)
            .keep_going(true)
            .retry(RetryPolicy { max_attempts: 2, backoff: Duration::from_millis(1) })
            .chaos(plan)
            .run(&campaign, &mut [])
            .unwrap();
        assert_eq!(outcome.summary.jobs_failed, 1);
        let failure = outcome.outcomes[0].result.as_ref().unwrap_err();
        assert_eq!(failure.kind, FailureKind::Transient);
        assert_eq!(failure.attempts, 2);
        assert!(failure.to_string().contains("transient"), "{failure}");
    }

    #[test]
    fn panics_are_quarantined_and_counted() {
        use crate::faultpoint::{FaultPoint, FaultSite};

        // A panicking job is caught by the worker, typed as Panicked and
        // (under keep_going) does not stop the rest of the campaign.
        let campaign =
            Campaign::new().suite_circuits(["s27"]).seeds([1, 2]).ns(vec![1]).tgen(tiny_tgen());
        let plan = Arc::new(
            crate::faultpoint::FaultPlan::new(5).point(FaultPoint::new(FaultSite::JobPanic, ":1")),
        );
        let registry = Arc::new(bist_obs::Registry::new());
        let outcome = CampaignEngine::new()
            .threads(1)
            .keep_going(true)
            .chaos(plan)
            .obs(Obs::with_registry(Arc::clone(&registry)))
            .run(&campaign, &mut [])
            .unwrap();
        assert_eq!(outcome.summary.jobs_ok, 1);
        assert_eq!(outcome.summary.jobs_failed, 1);
        let failure = outcome
            .outcomes
            .iter()
            .find_map(|o| o.result.as_ref().err())
            .expect("one job panicked");
        assert_eq!(failure.kind, FailureKind::Panicked);
        assert!(failure.message.contains("injected panic"), "{}", failure.message);
        assert_eq!(registry.snapshot().counter("pool.panics"), Some(1));
        // Without keep_going the panic is the campaign error.
        let plan = Arc::new(
            crate::faultpoint::FaultPlan::new(5).point(FaultPoint::new(FaultSite::JobPanic, ":1")),
        );
        let err = CampaignEngine::new().threads(1).chaos(plan).run(&campaign, &mut []).unwrap_err();
        assert!(matches!(err, BatchError::JobFailed { .. }), "{err}");
    }

    #[test]
    fn expired_deadlines_time_jobs_out() {
        use crate::faultpoint::{FaultPoint, FaultSite};

        // An injected delay far past the per-job deadline: the attempt's
        // token expires, the sweep (or the post-attempt check) observes
        // it, and the job is typed TimedOut — never retried.
        let campaign = Campaign::new().suite_circuits(["s27"]).ns(vec![1]).tgen(tiny_tgen());
        let plan = Arc::new(
            crate::faultpoint::FaultPlan::new(9)
                .point(FaultPoint::new(FaultSite::JobDelay, "").delay(Duration::from_millis(120))),
        );
        let registry = Arc::new(bist_obs::Registry::new());
        let outcome = CampaignEngine::new()
            .threads(1)
            .keep_going(true)
            .deadline(Duration::from_millis(10))
            .retry(RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(1) })
            .chaos(plan)
            .obs(Obs::with_registry(Arc::clone(&registry)))
            .run(&campaign, &mut [])
            .unwrap();
        assert_eq!(outcome.summary.jobs_failed, 1);
        let failure = outcome.outcomes[0].result.as_ref().unwrap_err();
        assert_eq!(failure.kind, FailureKind::TimedOut);
        assert_eq!(failure.attempts, 1, "timeouts never retry");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("pool.timeouts"), Some(1));
        assert_eq!(snap.counter("pool.retries"), Some(0));
    }

    #[test]
    fn resumed_run_skips_replayed_jobs_and_merges_the_summary() {
        let campaign = Campaign::new()
            .suite_circuits(["s27", "a298"])
            .backends([Backend::Packed, Backend::Scalar])
            .seeds([1])
            .ns(vec![1])
            .tgen(tiny_tgen());
        let full = CampaignEngine::new().threads(2).run(&campaign, &mut []).unwrap();
        let full_records: Vec<JobRecord> = {
            let mut sink = MemorySink::new();
            let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
            CampaignEngine::new().threads(2).run(&campaign, &mut sinks).unwrap();
            sink.records
        };
        // Replay half the jobs (ids 0 and 2) as already completed.
        let replayed: Vec<JobRecord> =
            full_records.iter().filter(|r| r.job % 2 == 0).cloned().collect();
        assert_eq!(replayed.len(), 2);
        let mut sink = MemorySink::new();
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        let resumed =
            CampaignEngine::new().threads(2).run_resumed(&campaign, &mut sinks, &replayed).unwrap();
        // Only the missing jobs executed and streamed.
        assert_eq!(resumed.outcomes.len(), 2);
        assert!(resumed.outcomes.iter().all(|o| o.spec.id % 2 == 1));
        assert_eq!(sink.records.len(), 2);
        // The merged summary matches the uninterrupted run in every
        // deterministic field.
        assert_eq!(resumed.summary.jobs_total, full.summary.jobs_total);
        assert_eq!(resumed.summary.jobs_ok, full.summary.jobs_ok);
        assert_eq!(resumed.summary.jobs_skipped, 0);
        for (a, b) in resumed.summary.circuits.iter().zip(&full.summary.circuits) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.jobs, b.jobs);
            assert!((a.mean_coverage - b.mean_coverage).abs() < 1e-12);
            assert!((a.mean_loaded_fraction - b.mean_loaded_fraction).abs() < 1e-12);
        }
        // A record from a different campaign shape is ignored.
        let mut foreign = replayed[0].clone();
        foreign.job = 999;
        let outcome =
            CampaignEngine::new().threads(1).run_resumed(&campaign, &mut [], &[foreign]).unwrap();
        assert_eq!(outcome.outcomes.len(), 4, "unknown job id cannot mark anything done");
    }
}
