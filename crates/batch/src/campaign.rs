//! Declarative campaign specifications and their expansion into a job
//! matrix.
//!
//! A [`Campaign`] names the axes of a batch experiment — circuits ×
//! backends × scheme configurations × seeds — plus the shared `T0`
//! generator configuration and verification switch. [`Campaign::expand`]
//! turns it into the flat, deterministic list of [`JobSpec`]s the
//! [`CampaignEngine`](crate::CampaignEngine) executes.

use crate::BatchError;
use std::path::PathBuf;
use subseq_bist::netlist::{self as bist_netlist, benchmarks};
use subseq_bist::tgen::TgenConfig;
use subseq_bist::{Backend, BistError, CompileOptions, Session};

/// Where a campaign circuit comes from.
///
/// Unlike a [`Session`](subseq_bist::Session) circuit source, a spec is
/// also the circuit's *cache identity*: two jobs whose specs share a
/// [`key`](CircuitSpec::key) share one parsed netlist, one collapsed
/// fault universe and (per seed) one generated `T0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CircuitSpec {
    /// A named entry of the built-in benchmark suite (`s27`, `a298`, ...).
    Suite(String),
    /// An ISCAS-89 `.bench` file on disk.
    File(PathBuf),
}

impl CircuitSpec {
    /// The cache key: suite name, or the file path verbatim.
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            CircuitSpec::Suite(name) => name.clone(),
            CircuitSpec::File(path) => path.display().to_string(),
        }
    }

    /// A short human label (suite name or file stem).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            CircuitSpec::Suite(name) => name.clone(),
            CircuitSpec::File(path) => {
                path.file_stem().and_then(|s| s.to_str()).unwrap_or("circuit").to_string()
            }
        }
    }

    /// Materializes the circuit (the cache's miss path). Delegates to
    /// the [`Session`] facade so suite lookup, file reading and their
    /// error messages have exactly one implementation.
    pub(crate) fn build(&self) -> Result<bist_netlist::Circuit, BistError> {
        let builder = match self {
            CircuitSpec::Suite(name) => Session::builder().suite_circuit(name.clone()),
            CircuitSpec::File(path) => Session::builder().bench_file(path.clone()),
        };
        Ok(builder.build()?.circuit().clone())
    }
}

/// One scheme configuration axis entry: a labelled `n` sweep with its
/// postprocessing switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeSpec {
    /// Label used in reports and JSONL rows.
    pub label: String,
    /// Repetition counts to sweep (all ≥ 1, non-empty).
    pub ns: Vec<usize>,
    /// Whether the §3.2 static compaction of `S` runs.
    pub postprocess: bool,
}

impl SchemeSpec {
    /// A labelled spec with the paper's default sweep and postprocessing.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        SchemeSpec { label: label.into(), ns: vec![2, 4, 8, 16], postprocess: true }
    }

    /// Replaces the `n` sweep.
    #[must_use]
    pub fn ns(mut self, ns: impl Into<Vec<usize>>) -> Self {
        self.ns = ns.into();
        self
    }

    /// Enables/disables the §3.2 static compaction.
    #[must_use]
    pub fn postprocess(mut self, on: bool) -> Self {
        self.postprocess = on;
        self
    }
}

impl Default for SchemeSpec {
    fn default() -> Self {
        SchemeSpec::new("default")
    }
}

/// A declarative batch experiment: circuits × backends × schemes × seeds.
///
/// Built incrementally; [`expand`](Campaign::expand) validates the spec
/// and produces the job matrix. Defaults: no circuits (must be added),
/// the packed backend, one default [`SchemeSpec`], seed 1999, default
/// `T0` generation, verification on.
///
/// # Example
///
/// ```
/// use bist_batch::Campaign;
/// use subseq_bist::Backend;
///
/// let jobs = Campaign::new()
///     .suite_circuits(["s27", "a298"])
///     .backends([Backend::Packed, Backend::Scalar])
///     .seeds([1, 2])
///     .expand()?;
/// assert_eq!(jobs.len(), 2 * 2 * 2);
/// # Ok::<(), bist_batch::BatchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    circuits: Vec<CircuitSpec>,
    backends: Vec<Backend>,
    schemes: Vec<SchemeSpec>,
    seeds: Vec<u64>,
    tgen: TgenConfig,
    optimize: CompileOptions,
    verify: bool,
}

impl Campaign {
    /// An empty campaign with the defaults above.
    #[must_use]
    pub fn new() -> Self {
        Campaign {
            circuits: Vec::new(),
            backends: vec![Backend::Packed],
            schemes: vec![SchemeSpec::default()],
            seeds: vec![1999],
            tgen: TgenConfig::new(),
            optimize: CompileOptions::none(),
            verify: true,
        }
    }

    /// Adds built-in suite circuits by name.
    #[must_use]
    pub fn suite_circuits<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.circuits.extend(names.into_iter().map(|n| CircuitSpec::Suite(n.into())));
        self
    }

    /// Adds every built-in suite circuit with at most `max_gates` gates.
    #[must_use]
    pub fn suite_up_to(mut self, max_gates: usize) -> Self {
        self.circuits.extend(
            benchmarks::suite_up_to(max_gates)
                .iter()
                .map(|e| CircuitSpec::Suite(e.name.to_string())),
        );
        self
    }

    /// Adds an ISCAS-89 `.bench` file.
    #[must_use]
    pub fn circuit_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.circuits.push(CircuitSpec::File(path.into()));
        self
    }

    /// Replaces the backend axis.
    #[must_use]
    pub fn backends(mut self, backends: impl Into<Vec<Backend>>) -> Self {
        self.backends = backends.into();
        self
    }

    /// Replaces the scheme axis.
    #[must_use]
    pub fn schemes(mut self, schemes: impl Into<Vec<SchemeSpec>>) -> Self {
        self.schemes = schemes.into();
        self
    }

    /// Shortcut: one default scheme spec with the given `n` sweep.
    #[must_use]
    pub fn ns(mut self, ns: impl Into<Vec<usize>>) -> Self {
        self.schemes = vec![SchemeSpec::default().ns(ns)];
        self
    }

    /// Replaces the seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl Into<Vec<u64>>) -> Self {
        self.seeds = seeds.into();
        self
    }

    /// The shared `T0`-generation configuration (its seed field is
    /// overridden per job by the seed axis).
    #[must_use]
    pub fn tgen(mut self, tgen: TgenConfig) -> Self {
        self.tgen = tgen;
        self
    }

    /// The staged-compiler pass selection every job's fault simulation
    /// runs with (off by default). Jobs stay bit-identical to an
    /// unoptimized campaign; only the simulated tape changes. The
    /// staged compile is cached per (circuit, pass selection), so a
    /// whole campaign optimizes each circuit once.
    #[must_use]
    pub fn optimize(mut self, options: CompileOptions) -> Self {
        self.optimize = options;
        self
    }

    /// Enables/disables post-run coverage verification for every job.
    #[must_use]
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// The circuit axis.
    #[must_use]
    pub fn circuits(&self) -> &[CircuitSpec] {
        &self.circuits
    }

    /// The scheme axis.
    #[must_use]
    pub fn scheme_specs(&self) -> &[SchemeSpec] {
        &self.schemes
    }

    /// The shared `T0`-generation configuration.
    #[must_use]
    pub fn tgen_config(&self) -> &TgenConfig {
        &self.tgen
    }

    /// Whether jobs verify coverage post-run.
    #[must_use]
    pub fn verifies(&self) -> bool {
        self.verify
    }

    /// The staged-compiler pass selection of every job.
    #[must_use]
    pub fn optimize_options(&self) -> CompileOptions {
        self.optimize
    }

    /// A stable hex fingerprint of everything that shapes the campaign's
    /// results: every axis (circuits, backends, schemes, seeds), the
    /// `T0`-generation configuration, the staged-compiler pass selection
    /// and the verification switch. Stamped onto every JSONL journal row
    /// (via [`JsonlSink::with_fingerprint`](crate::JsonlSink::with_fingerprint))
    /// so `--resume` can refuse a journal written by a different
    /// configuration instead of silently merging incompatible results.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |text: &str| {
            for b in text.bytes().chain(std::iter::once(0x1f)) {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for circuit in &self.circuits {
            eat(&circuit.key());
        }
        for &backend in &self.backends {
            eat(&backend_label(backend));
        }
        for scheme in &self.schemes {
            eat(&scheme.label);
            eat(&format!("{:?}", scheme.ns));
            eat(&format!("{}", scheme.postprocess));
        }
        for &seed in &self.seeds {
            eat(&seed.to_string());
        }
        // TgenConfig and CompileOptions are plain config structs; their
        // Debug forms spell out every field, which is exactly the
        // identity we need.
        eat(&format!("{:?}", self.tgen));
        eat(&format!("{:?}", self.optimize));
        eat(&format!("{}", self.verify));
        format!("{h:016x}")
    }

    /// Expands the campaign into its deterministic job matrix, ordered
    /// circuit-major (so all jobs touching one circuit are adjacent and
    /// the artifact cache warms in one stride).
    ///
    /// # Errors
    ///
    /// [`BatchError::Config`] if any axis is empty or a scheme sweep
    /// contains `n = 0`.
    pub fn expand(&self) -> Result<Vec<JobSpec>, BatchError> {
        if self.circuits.is_empty() {
            return Err(BatchError::Config("campaign has no circuits".to_string()));
        }
        if self.backends.is_empty() {
            return Err(BatchError::Config("campaign has no backends".to_string()));
        }
        if self.schemes.is_empty() {
            return Err(BatchError::Config("campaign has no scheme specs".to_string()));
        }
        if self.seeds.is_empty() {
            return Err(BatchError::Config("campaign has no seeds".to_string()));
        }
        for scheme in &self.schemes {
            if scheme.ns.is_empty() || scheme.ns.contains(&0) {
                return Err(BatchError::Config(format!(
                    "scheme `{}` has an empty n sweep or n = 0",
                    scheme.label
                )));
            }
        }
        let mut jobs = Vec::with_capacity(
            self.circuits.len() * self.backends.len() * self.schemes.len() * self.seeds.len(),
        );
        for circuit in &self.circuits {
            for &seed in &self.seeds {
                for scheme in &self.schemes {
                    for &backend in &self.backends {
                        jobs.push(JobSpec {
                            id: jobs.len(),
                            circuit: circuit.clone(),
                            backend,
                            scheme: scheme.clone(),
                            seed,
                        });
                    }
                }
            }
        }
        Ok(jobs)
    }
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

/// One fully specified unit of work: a point of the campaign matrix.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Position in the expanded matrix (stable across runs).
    pub id: usize,
    /// The circuit to run on.
    pub circuit: CircuitSpec,
    /// The fault-simulation engine.
    pub backend: Backend,
    /// The scheme configuration.
    pub scheme: SchemeSpec,
    /// Seed for `T0` generation and Procedure 2's omission order.
    pub seed: u64,
}

impl JobSpec {
    /// A short stable label for the backend axis (used in reports even
    /// when the job failed before an engine reported its own name).
    #[must_use]
    pub fn backend_label(&self) -> String {
        backend_label(self.backend)
    }
}

/// Stable textual form of a [`Backend`] (the CLI's `--backends` syntax).
#[must_use]
pub fn backend_label(backend: Backend) -> String {
    match backend {
        Backend::Packed => "packed".to_string(),
        Backend::Scalar => "scalar".to_string(),
        Backend::Sharded { threads, width } => format!("sharded:{threads}:{width}"),
    }
}

/// Parses the CLI's backend syntax: `packed`, `scalar`, or
/// `sharded[:threads[:width]]` (`threads` 0 = auto, default width 256).
///
/// # Errors
///
/// [`BatchError::Config`] naming the offending token.
pub fn parse_backend(token: &str) -> Result<Backend, BatchError> {
    match token {
        "packed" => Ok(Backend::Packed),
        "scalar" => Ok(Backend::Scalar),
        t if t == "sharded" || t.starts_with("sharded:") => {
            let mut parts = t.splitn(3, ':').skip(1);
            let parse = |part: Option<&str>, what: &str, default: usize| match part {
                None => Ok(default),
                Some(p) => p.parse::<usize>().map_err(|_| {
                    BatchError::Config(format!("bad {what} `{p}` in backend `{token}`"))
                }),
            };
            let threads = parse(parts.next(), "thread count", 0)?;
            let width = parse(parts.next(), "width", 256)?;
            Ok(Backend::Sharded { threads, width })
        }
        other => Err(BatchError::Config(format!(
            "unknown backend `{other}` (expected packed, scalar or sharded[:threads[:width]])"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_circuit_major_and_complete() {
        let jobs = Campaign::new()
            .suite_circuits(["s27", "a298"])
            .backends([Backend::Packed, Backend::Scalar])
            .seeds([1, 2])
            .ns(vec![1])
            .expand()
            .unwrap();
        assert_eq!(jobs.len(), 8);
        assert_eq!(jobs[0].id, 0);
        // Circuit-major: first half all on s27.
        assert!(jobs[..4].iter().all(|j| j.circuit.key() == "s27"));
        assert!(jobs[4..].iter().all(|j| j.circuit.key() == "a298"));
    }

    #[test]
    fn empty_axes_are_config_errors() {
        assert!(matches!(Campaign::new().expand(), Err(BatchError::Config(_))));
        let no_backends = Campaign::new().suite_circuits(["s27"]).backends([]);
        assert!(matches!(no_backends.expand(), Err(BatchError::Config(_))));
        let zero_n = Campaign::new().suite_circuits(["s27"]).ns(vec![0]);
        assert!(matches!(zero_n.expand(), Err(BatchError::Config(_))));
        let no_seeds = Campaign::new().suite_circuits(["s27"]).seeds([]);
        assert!(matches!(no_seeds.expand(), Err(BatchError::Config(_))));
    }

    #[test]
    fn suite_up_to_adds_the_small_prefix() {
        let c = Campaign::new().suite_up_to(200);
        assert!(c.circuits().len() >= 4);
        assert!(c.circuits().iter().all(|s| matches!(s, CircuitSpec::Suite(_))));
    }

    #[test]
    fn backend_labels_round_trip() {
        for backend in [
            Backend::Packed,
            Backend::Scalar,
            Backend::Sharded { threads: 0, width: 256 },
            Backend::Sharded { threads: 4, width: 512 },
        ] {
            assert_eq!(parse_backend(&backend_label(backend)).unwrap(), backend);
        }
        assert_eq!(parse_backend("sharded").unwrap(), Backend::Sharded { threads: 0, width: 256 });
        assert!(parse_backend("vectorized").is_err());
        assert!(parse_backend("sharded:x:256").is_err());
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive_to_every_axis() {
        let base = || Campaign::new().suite_circuits(["s27"]).seeds([1999]).ns(vec![1]);
        let fp = base().fingerprint();
        assert_eq!(fp.len(), 16, "16 hex chars: {fp}");
        assert_eq!(fp, base().fingerprint(), "same spec, same fingerprint");
        for changed in [
            base().suite_circuits(["a298"]).fingerprint(),
            base().backends([Backend::Scalar]).fingerprint(),
            base().ns(vec![2]).fingerprint(),
            base().seeds([1999, 2000]).fingerprint(),
            base().tgen(TgenConfig::new().max_length(9)).fingerprint(),
            base().optimize(CompileOptions::all()).fingerprint(),
            base().verify(false).fingerprint(),
        ] {
            assert_ne!(fp, changed, "every configuration axis must move the fingerprint");
        }
    }

    #[test]
    fn optimize_spellings_share_one_fingerprint() {
        // `CompileOptions::parse` normalizes letter order and repetition,
        // so every spelling of the same pass set fingerprints (and hence
        // cache-keys and journal-stamps) identically — critical once
        // fingerprints key a shared server cache fed by many clients.
        let fp = |spec: &str| {
            Campaign::new()
                .suite_circuits(["s27"])
                .seeds([1999])
                .ns(vec![1])
                .optimize(CompileOptions::parse(spec).expect("valid pass spec"))
                .fingerprint()
        };
        assert_eq!(fp("xf"), fp("fx"));
        assert_eq!(fp("xf"), fp("fxxf"));
        assert_eq!(fp("xfds"), fp("sdfx"));
        assert_ne!(fp("xf"), fp("none"), "distinct pass sets still differ");
    }

    #[test]
    fn circuit_spec_identity_and_build() {
        let spec = CircuitSpec::Suite("s27".to_string());
        assert_eq!(spec.key(), "s27");
        assert_eq!(spec.label(), "s27");
        assert_eq!(spec.build().unwrap().num_inputs(), 4);
        let missing = CircuitSpec::Suite("nope".to_string());
        assert!(missing.build().is_err());
        let file = CircuitSpec::File(PathBuf::from("/no/such/file.bench"));
        assert_eq!(file.label(), "file");
        assert!(file.build().is_err());
    }
}
