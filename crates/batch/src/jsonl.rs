//! JSONL rendering and schema validation for campaign output.
//!
//! One JSON object per line, hand-rolled in the same offline style as
//! `bist_bench::timing`: a strict recursive-descent parser checks every
//! row for well-formed JSON *and* the campaign row schema, so truncated
//! or drifting output fails loudly (the [`JsonlSink`](crate::JsonlSink)
//! validates each row before writing it, and CI re-validates the file).

use crate::report::{JobMetrics, JobRecord, JobStatus};

/// Keys every row must carry. `seconds` stays the job's total wall time
/// (`queue_seconds + exec_seconds`) so historical consumers keep working.
const ROW_KEYS: [&str; 9] = [
    "job",
    "circuit",
    "backend",
    "scheme",
    "seed",
    "status",
    "seconds",
    "queue_seconds",
    "exec_seconds",
];
/// Additional keys required when `status == "ok"`.
const OK_KEYS: [&str; 14] = [
    "engine",
    "faults_total",
    "faults_detected",
    "t0_len",
    "n",
    "set_count",
    "total_len",
    "max_len",
    "applied_test_len",
    "loaded_fraction",
    "scheme_data_bits",
    "monolithic_data_bits",
    "gates_removed",
    "verified",
];

/// Renders one record as a single JSONL row (no trailing newline).
#[must_use]
pub fn record_to_json(record: &JobRecord) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    push_kv(&mut out, "job", &record.job.to_string());
    push_kv_str(&mut out, "circuit", &record.circuit);
    push_kv_str(&mut out, "backend", &record.backend);
    push_kv_str(&mut out, "scheme", &record.scheme);
    push_kv(&mut out, "seed", &record.seed.to_string());
    push_kv_str(&mut out, "status", record.status.as_str());
    push_kv(&mut out, "seconds", &format!("{:.6}", record.seconds));
    push_kv(&mut out, "queue_seconds", &format!("{:.6}", record.queue_seconds));
    push_kv(&mut out, "exec_seconds", &format!("{:.6}", record.exec_seconds));
    if let Some(m) = &record.metrics {
        push_kv_str(&mut out, "engine", &m.engine);
        push_kv(&mut out, "faults_total", &m.faults_total.to_string());
        push_kv(&mut out, "faults_detected", &m.faults_detected.to_string());
        push_kv(&mut out, "t0_len", &m.t0_len.to_string());
        push_kv(&mut out, "n", &m.n.to_string());
        push_kv(&mut out, "set_count", &m.set_count.to_string());
        push_kv(&mut out, "total_len", &m.total_len.to_string());
        push_kv(&mut out, "max_len", &m.max_len.to_string());
        push_kv(&mut out, "applied_test_len", &m.applied_test_len.to_string());
        // Shortest round-trip rendering (Rust's f64 Display), NOT a fixed
        // precision: resumed campaigns rebuild their summary from these
        // rows, and the digest compares f64 bit patterns exactly.
        push_kv(&mut out, "loaded_fraction", &m.loaded_fraction.to_string());
        push_kv(&mut out, "scheme_data_bits", &m.scheme_data_bits.to_string());
        push_kv(&mut out, "monolithic_data_bits", &m.monolithic_data_bits.to_string());
        push_kv(&mut out, "gates_removed", &m.gates_removed.to_string());
        let verified = match m.verified {
            Some(true) => "true",
            Some(false) => "false",
            None => "null",
        };
        push_kv(&mut out, "verified", verified);
    }
    if let Some(error) = &record.error {
        push_kv_str(&mut out, "error", error);
    }
    out.push('}');
    out
}

fn push_kv(out: &mut String, key: &str, raw: &str) {
    if out.len() > 1 {
        out.push_str(", ");
    }
    out.push('"');
    out.push_str(key);
    out.push_str("\": ");
    out.push_str(raw);
}

fn push_kv_str(out: &mut String, key: &str, value: &str) {
    push_kv(out, key, &format!("\"{}\"", escape(value)));
}

pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Keys every lint diagnostic row must carry (`subseq-bist lint --jsonl`).
const LINT_KEYS: [&str; 5] = ["circuit", "code", "severity", "message", "nets"];

/// Renders one lint diagnostic as a single JSONL row (no trailing
/// newline): `circuit`, stable `code` (`L001`…), `severity`
/// (`error`/`warning`), `message`, and the offending `nets` as a JSON
/// array.
#[must_use]
pub fn diagnostic_to_json(circuit: &str, diagnostic: &subseq_bist::verify::Diagnostic) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    push_kv_str(&mut out, "circuit", circuit);
    push_kv_str(&mut out, "code", diagnostic.code.code());
    push_kv_str(&mut out, "severity", &diagnostic.severity().to_string());
    push_kv_str(&mut out, "message", &diagnostic.message);
    let nets =
        diagnostic.nets.iter().map(|n| format!("\"{}\"", escape(n))).collect::<Vec<_>>().join(", ");
    push_kv(&mut out, "nets", &format!("[{nets}]"));
    out.push('}');
    out
}

/// Validates one lint diagnostic JSONL row: well-formed JSON object, the
/// [`LINT_KEYS`], an `L`-prefixed code and a known severity.
///
/// # Errors
///
/// A description of the first syntax or schema violation.
pub fn validate_lint_jsonl_line(line: &str) -> Result<(), String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.ws();
    let mut keys: Vec<String> = Vec::new();
    let mut code: Option<String> = None;
    let mut severity: Option<String> = None;
    p.object(&mut |p, key| {
        p.ws();
        match key {
            "code" => code = Some(p.string()?),
            "severity" => severity = Some(p.string()?),
            "nets" => p.array()?,
            _ => p.value()?,
        }
        keys.push(key.to_string());
        Ok(())
    })?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    for required in LINT_KEYS {
        if !keys.iter().any(|k| k == required) {
            return Err(format!("diagnostic row missing `{required}`"));
        }
    }
    let code = code.expect("presence checked above");
    if code.len() != 4 || !code.starts_with('L') || !code[1..].bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("bad lint code `{code}` (want L000-style)"));
    }
    match severity.expect("presence checked above").as_str() {
        "error" | "warning" => Ok(()),
        other => Err(format!("unknown severity `{other}`")),
    }
}

/// Validates a whole lint-diagnostic JSONL document (one row per
/// non-empty line) and returns the row count.
///
/// # Errors
///
/// The first offending line number and its violation.
pub fn validate_lint_jsonl(text: &str) -> Result<usize, String> {
    let mut rows = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_lint_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        rows += 1;
    }
    Ok(rows)
}

/// Validates one JSONL row: well-formed JSON object, the required row
/// keys, and — for `status: "ok"` rows — the metric keys.
///
/// # Errors
///
/// A description of the first syntax or schema violation.
pub fn validate_jsonl_line(line: &str) -> Result<(), String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.ws();
    let mut keys: Vec<String> = Vec::new();
    let mut status: Option<String> = None;
    p.object(&mut |p, key| {
        p.ws();
        if key == "status" {
            let value = p.string()?;
            status = Some(value);
        } else {
            p.value()?;
        }
        keys.push(key.to_string());
        Ok(())
    })?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    for required in ROW_KEYS {
        if !keys.iter().any(|k| k == required) {
            return Err(format!("row missing `{required}`"));
        }
    }
    match status.as_deref() {
        Some("ok") => {
            for required in OK_KEYS {
                if !keys.iter().any(|k| k == required) {
                    return Err(format!("ok row missing `{required}`"));
                }
            }
        }
        Some("failed") => {
            if !keys.iter().any(|k| k == "error") {
                return Err("failed row missing `error`".to_string());
            }
        }
        Some(other) => return Err(format!("unknown status `{other}`")),
        None => unreachable!("status presence checked above"),
    }
    Ok(())
}

/// Validates a whole JSONL document (one row per non-empty line) and
/// returns the row count.
///
/// # Errors
///
/// The first offending line number and its violation.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut rows = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        rows += 1;
    }
    Ok(rows)
}

/// [`validate_jsonl`] for crash-recovery (`--resume`): tolerates exactly
/// one invalid **trailing** line — the torn write of a killed process —
/// and returns `(valid_rows, truncated)`. An invalid line anywhere
/// before the end is still an error: torn writes only ever corrupt the
/// tail of an append-only journal, so mid-file damage means the file is
/// not what it claims to be.
///
/// # Errors
///
/// The first offending non-trailing line number and its violation.
pub fn validate_jsonl_lenient(text: &str) -> Result<(usize, bool), String> {
    let lines: Vec<(usize, &str)> =
        text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).collect();
    let mut rows = 0;
    for (position, (i, line)) in lines.iter().enumerate() {
        match validate_jsonl_line(line) {
            Ok(()) => rows += 1,
            Err(_) if position == lines.len() - 1 => return Ok((rows, true)),
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok((rows, false))
}

/// One journal row parsed back into its record, plus the campaign
/// fingerprint the writing sink stamped on it (if any).
#[derive(Debug, Clone)]
pub struct ParsedRow {
    /// The reconstructed record.
    pub record: JobRecord,
    /// The `fp` key of the row — the writing campaign's configuration
    /// fingerprint, used by `--resume` to refuse stale journals.
    pub fingerprint: Option<String>,
}

/// Parses one JSONL row back into a [`JobRecord`] — the read half of
/// [`record_to_json`], used by crash-recovery to replay a journal.
/// Unknown keys are ignored (forward-compatible, like the validator).
///
/// # Errors
///
/// A description of the first syntax or schema violation.
pub fn parse_record(line: &str) -> Result<ParsedRow, String> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.ws();
    let mut job: Option<usize> = None;
    let mut circuit: Option<String> = None;
    let mut backend: Option<String> = None;
    let mut scheme: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut status: Option<String> = None;
    let mut seconds: Option<f64> = None;
    let mut queue_seconds: Option<f64> = None;
    let mut exec_seconds: Option<f64> = None;
    let mut error: Option<String> = None;
    let mut fingerprint: Option<String> = None;
    let mut engine: Option<String> = None;
    let mut nums: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut verified: Option<Option<bool>> = None;
    p.object(&mut |p, key| {
        p.ws();
        match key {
            "job" => job = Some(p.raw_number()?.parse().map_err(|e| format!("job: {e}"))?),
            "circuit" => circuit = Some(p.string()?),
            "backend" => backend = Some(p.string()?),
            "scheme" => scheme = Some(p.string()?),
            "seed" => seed = Some(p.raw_number()?.parse().map_err(|e| format!("seed: {e}"))?),
            "status" => status = Some(p.string()?),
            "seconds" => {
                seconds = Some(p.raw_number()?.parse().map_err(|e| format!("seconds: {e}"))?);
            }
            "queue_seconds" => {
                queue_seconds =
                    Some(p.raw_number()?.parse().map_err(|e| format!("queue_seconds: {e}"))?);
            }
            "exec_seconds" => {
                exec_seconds =
                    Some(p.raw_number()?.parse().map_err(|e| format!("exec_seconds: {e}"))?);
            }
            "error" => error = Some(p.string()?),
            "fp" => fingerprint = Some(p.string()?),
            "engine" => engine = Some(p.string()?),
            "verified" => {
                verified = Some(match p.bytes.get(p.pos) {
                    Some(b't') => {
                        p.literal("true")?;
                        Some(true)
                    }
                    Some(b'f') => {
                        p.literal("false")?;
                        Some(false)
                    }
                    _ => {
                        p.literal("null")?;
                        None
                    }
                });
            }
            k if OK_KEYS.contains(&k) => {
                nums.insert(k.to_string(), p.raw_number()?.to_string());
            }
            _ => p.value()?,
        }
        Ok(())
    })?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    let status = match status.as_deref() {
        Some("ok") => JobStatus::Ok,
        Some("failed") => JobStatus::Failed,
        Some(other) => return Err(format!("unknown status `{other}`")),
        None => return Err("row missing `status`".to_string()),
    };
    let need = |name: &str, v: Option<String>| v.ok_or_else(|| format!("row missing `{name}`"));
    let metrics = if status == JobStatus::Ok {
        let num = |name: &str| -> Result<usize, String> {
            nums.get(name)
                .ok_or_else(|| format!("ok row missing `{name}`"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        Some(JobMetrics {
            engine: need("engine", engine)?,
            faults_total: num("faults_total")?,
            faults_detected: num("faults_detected")?,
            t0_len: num("t0_len")?,
            n: num("n")?,
            set_count: num("set_count")?,
            total_len: num("total_len")?,
            max_len: num("max_len")?,
            applied_test_len: num("applied_test_len")?,
            loaded_fraction: nums
                .get("loaded_fraction")
                .ok_or("ok row missing `loaded_fraction`")?
                .parse()
                .map_err(|e| format!("loaded_fraction: {e}"))?,
            scheme_data_bits: num("scheme_data_bits")?,
            monolithic_data_bits: num("monolithic_data_bits")?,
            gates_removed: num("gates_removed")?,
            verified: verified.ok_or("ok row missing `verified`")?,
        })
    } else {
        if error.is_none() {
            return Err("failed row missing `error`".to_string());
        }
        None
    };
    Ok(ParsedRow {
        record: JobRecord {
            job: job.ok_or("row missing `job`")?,
            circuit: need("circuit", circuit)?,
            backend: need("backend", backend)?,
            scheme: need("scheme", scheme)?,
            seed: seed.ok_or("row missing `seed`")?,
            status,
            seconds: seconds.ok_or("row missing `seconds`")?,
            queue_seconds: queue_seconds.ok_or("row missing `queue_seconds`")?,
            exec_seconds: exec_seconds.ok_or("row missing `exec_seconds`")?,
            metrics,
            error,
        },
        fingerprint,
    })
}

/// Minimal strict JSON scanner (subset shared with
/// `bist_bench::timing`'s validator: objects, arrays, strings, numbers,
/// literals; no trailing commas, strict escapes). Crate-visible so the
/// campaign service parses submission bodies with the same strictness
/// as the row validators.
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// A parser over `text`, positioned at the start.
    pub(crate) fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    /// `true` once every byte has been consumed (call after `ws`).
    pub(crate) fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// The current byte position (for error messages).
    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    /// The byte at the cursor, if any (one-byte lookahead).
    pub(crate) fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    pub(crate) fn ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.pos))
        }
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    match self.bytes.get(self.pos + 1) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/' | b'b' | b'f' | b'n' | b'r' | b't') => out.push(' '),
                        Some(b'u') => {
                            let hex = self.bytes.get(self.pos + 2..self.pos + 6);
                            if !hex.is_some_and(|h| h.iter().all(u8::is_ascii_hexdigit)) {
                                return Err(format!("bad \\u escape at byte {}", self.pos));
                            }
                            out.push(' ');
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 2;
                }
                Some(&b) if b >= 0x20 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while p.bytes.get(p.pos).is_some_and(u8::is_ascii_digit) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("expected number at byte {start}"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("digits required after `.` at byte {}", self.pos));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("digits required in exponent at byte {}", self.pos));
            }
        }
        Ok(())
    }

    /// Like [`Parser::number`], but returns the matched text so callers
    /// can parse it into a typed value.
    pub(crate) fn raw_number(&mut self) -> Result<&str, String> {
        let start = self.pos;
        self.number()?;
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-utf8 number at byte {start}"))
    }

    pub(crate) fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    pub(crate) fn value(&mut self) -> Result<(), String> {
        self.ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => self.string().map(|_| ()),
            Some(b'{') => self.object(&mut |p, _| {
                p.ws();
                p.value()
            }),
            Some(b'[') => self.array(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            _ => self.number(),
        }
    }

    pub(crate) fn array(&mut self) -> Result<(), String> {
        self.array_items(&mut |p| p.value())
    }

    /// Parses a JSON array, handing the cursor to `item` once per
    /// element (positioned at the element's first non-whitespace byte).
    pub(crate) fn array_items(
        &mut self,
        item: &mut dyn FnMut(&mut Self) -> Result<(), String>,
    ) -> Result<(), String> {
        self.eat(b'[')?;
        self.ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.ws();
            item(self)?;
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    pub(crate) fn object(
        &mut self,
        member: &mut dyn FnMut(&mut Self, &str) -> Result<(), String>,
    ) -> Result<(), String> {
        self.ws();
        self.eat(b'{')?;
        self.ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            member(self, &key)?;
            self.ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{JobMetrics, JobStatus};

    fn ok_record() -> JobRecord {
        JobRecord {
            job: 3,
            circuit: "s27".to_string(),
            backend: "sharded:0:256".to_string(),
            scheme: "default".to_string(),
            seed: 1999,
            status: JobStatus::Ok,
            seconds: 0.25,
            queue_seconds: 0.05,
            exec_seconds: 0.2,
            metrics: Some(JobMetrics {
                engine: "sharded256".to_string(),
                faults_total: 32,
                faults_detected: 32,
                t0_len: 10,
                n: 2,
                set_count: 2,
                total_len: 5,
                max_len: 3,
                applied_test_len: 80,
                loaded_fraction: 0.5,
                scheme_data_bits: 12,
                monolithic_data_bits: 40,
                gates_removed: 0,
                verified: Some(true),
            }),
            error: None,
        }
    }

    #[test]
    fn ok_rows_render_and_validate() {
        let line = record_to_json(&ok_record());
        validate_jsonl_line(&line).expect("valid row");
        assert!(line.contains("\"status\": \"ok\""));
        assert!(line.contains("\"verified\": true"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn failed_rows_require_error() {
        let mut record = ok_record();
        record.status = JobStatus::Failed;
        record.metrics = None;
        record.error = Some("it \"broke\"\nbadly".to_string());
        let line = record_to_json(&record);
        validate_jsonl_line(&line).expect("valid failed row");
        assert!(line.contains("\\\"broke\\\""));
        assert!(!line.contains('\n'));
        // Dropping the error key invalidates the row.
        record.error = None;
        let line = record_to_json(&record);
        assert!(validate_jsonl_line(&line).unwrap_err().contains("error"));
    }

    #[test]
    fn schema_violations_are_caught() {
        assert!(validate_jsonl_line("{").is_err());
        assert!(validate_jsonl_line("{}").unwrap_err().contains("job"));
        assert!(validate_jsonl_line("{\"job\": 1}x").is_err());
        let no_metrics = r#"{"job": 1, "circuit": "c", "backend": "b", "scheme": "s",
            "seed": 1, "status": "ok", "seconds": 0.1, "queue_seconds": 0.0,
            "exec_seconds": 0.1}"#
            .replace('\n', " ");
        assert!(validate_jsonl_line(&no_metrics).unwrap_err().contains("ok row missing"));
        // A row without the queue/exec split is rejected outright.
        let no_split = r#"{"job": 1, "circuit": "c", "backend": "b", "scheme": "s",
            "seed": 1, "status": "ok", "seconds": 0.1}"#
            .replace('\n', " ");
        assert!(validate_jsonl_line(&no_split).unwrap_err().contains("queue_seconds"));
        let bad_status = r#"{"job": 1, "circuit": "c", "backend": "b", "scheme": "s",
            "seed": 1, "status": "meh", "seconds": 0.1, "queue_seconds": 0.0,
            "exec_seconds": 0.1}"#
            .replace('\n', " ");
        assert!(validate_jsonl_line(&bad_status).unwrap_err().contains("meh"));
    }

    #[test]
    fn lint_rows_render_and_validate() {
        use subseq_bist::verify::lint_source;
        let diags = lint_source("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap();
        assert!(!diags.is_empty());
        let mut doc = String::new();
        for d in &diags {
            let line = diagnostic_to_json("demo", d);
            validate_lint_jsonl_line(&line).expect("valid diagnostic row");
            assert!(line.contains("\"code\": \"L002\""), "{line}");
            assert!(line.contains("\"severity\": \"error\""), "{line}");
            assert!(line.contains("\"nets\": [\"ghost\"]"), "{line}");
            doc.push_str(&line);
            doc.push('\n');
        }
        assert_eq!(validate_lint_jsonl(&doc).unwrap(), diags.len());
    }

    #[test]
    fn lint_schema_violations_are_caught() {
        assert!(validate_lint_jsonl_line("{").is_err());
        assert!(validate_lint_jsonl_line("{}").unwrap_err().contains("circuit"));
        let row = |code: &str, sev: &str| {
            format!(
                r#"{{"circuit": "c", "code": "{code}", "severity": "{sev}", "message": "m", "nets": ["x"]}}"#
            )
        };
        assert!(validate_lint_jsonl_line(&row("L001", "error")).is_ok());
        assert!(validate_lint_jsonl_line(&row("L001", "warning")).is_ok());
        assert!(validate_lint_jsonl_line(&row("X001", "error")).unwrap_err().contains("X001"));
        assert!(validate_lint_jsonl_line(&row("L1", "error")).unwrap_err().contains("L1"));
        assert!(validate_lint_jsonl_line(&row("L001", "fatal")).unwrap_err().contains("fatal"));
        // `nets` must be an array, not a scalar.
        let scalar_nets =
            r#"{"circuit": "c", "code": "L001", "severity": "error", "message": "m", "nets": "x"}"#;
        assert!(validate_lint_jsonl_line(scalar_nets).is_err());
        // Campaign rows are not diagnostic rows.
        assert!(validate_lint_jsonl_line(&record_to_json(&ok_record())).is_err());
    }

    #[test]
    fn whole_documents_validate_with_line_numbers() {
        let good = format!("{}\n{}\n", record_to_json(&ok_record()), record_to_json(&ok_record()));
        assert_eq!(validate_jsonl(&good).unwrap(), 2);
        assert_eq!(validate_jsonl("\n\n").unwrap(), 0);
        let mixed = format!("{}\nnot json\n", record_to_json(&ok_record()));
        assert!(validate_jsonl(&mixed).unwrap_err().starts_with("line 2"));
        // Truncation of the last row is caught.
        let row = record_to_json(&ok_record());
        assert!(validate_jsonl(&row[..row.len() - 2]).is_err());
    }

    #[test]
    fn lenient_validation_forgives_only_a_torn_tail() {
        let row = record_to_json(&ok_record());
        // Intact documents: same row count, not truncated.
        let good = format!("{row}\n{row}\n");
        assert_eq!(validate_jsonl_lenient(&good).unwrap(), (2, false));
        // A torn final line is dropped and reported.
        let torn = format!("{row}\n{}", &row[..row.len() - 9]);
        assert!(validate_jsonl(&torn).is_err(), "strict mode still rejects");
        assert_eq!(validate_jsonl_lenient(&torn).unwrap(), (1, true));
        // Mid-file damage stays a hard error even leniently.
        let mid = format!("not json\n{row}\n");
        assert!(validate_jsonl_lenient(&mid).unwrap_err().starts_with("line 1"));
        assert_eq!(validate_jsonl_lenient("\n").unwrap(), (0, false));
    }

    #[test]
    fn parse_record_round_trips_and_rejects_incomplete_rows() {
        let line = record_to_json(&ok_record());
        let parsed = parse_record(&line).unwrap();
        assert_eq!(format!("{:?}", parsed.record), format!("{:?}", ok_record()));
        assert_eq!(parsed.fingerprint, None);
        // Unknown keys are ignored; a spliced fp is captured.
        let stamped =
            format!("{}, \"fp\": \"abc123\", \"extra\": [1, 2]}}", &line[..line.len() - 1]);
        let parsed = parse_record(&stamped).unwrap();
        assert_eq!(parsed.fingerprint.as_deref(), Some("abc123"));
        assert_eq!(parsed.record.job, 3);
        // An ok row without its metrics is rejected.
        assert!(parse_record(&line.replace(", \"engine\": \"sharded256\"", ""))
            .unwrap_err()
            .contains("engine"));
        // Torn rows fail to parse.
        assert!(parse_record(&line[..line.len() - 4]).is_err());
    }
}
