//! Result streaming and roll-up: [`JobRecord`]s flow through pluggable
//! [`ReportSink`]s as jobs complete, and a [`CampaignSummary`] rolls up
//! coverage, storage and wall time per axis at the end.

use crate::jsonl::{parse_record, record_to_json, validate_jsonl_line};
use crate::BatchError;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The session ran to completion.
    Ok,
    /// The session (or an artifact it needed) failed.
    Failed,
}

impl JobStatus {
    /// The status string used in JSONL rows (`"ok"` / `"failed"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
        }
    }
}

/// The result metrics of one successful job (a flattened
/// [`SessionReport`](subseq_bist::SessionReport)).
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// Name the simulation engine reported (e.g. `"sharded256"`).
    pub engine: String,
    /// Size of the collapsed fault universe.
    pub faults_total: usize,
    /// Faults detected by `T0`.
    pub faults_detected: usize,
    /// `|T0|`.
    pub t0_len: usize,
    /// Best repetition count.
    pub n: usize,
    /// `|S|` after compaction.
    pub set_count: usize,
    /// Total loaded length after compaction.
    pub total_len: usize,
    /// Maximum loaded length after compaction.
    pub max_len: usize,
    /// Applied at-speed test length (`8·n·total_len`).
    pub applied_test_len: usize,
    /// `total_len / |T0|` — the paper's headline ratio.
    pub loaded_fraction: f64,
    /// On-chip test-data bits of the scheme memory.
    pub scheme_data_bits: usize,
    /// Test-data bits of storing all of `T0` monolithically.
    pub monolithic_data_bits: usize,
    /// Gates the staged compiler removed from the simulated tape (0 for
    /// an unoptimized job).
    pub gates_removed: usize,
    /// Post-run verification outcome (`None` if disabled).
    pub verified: Option<bool>,
}

/// One completed (or failed) job, flattened for streaming to sinks.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (position in the campaign matrix).
    pub job: usize,
    /// Circuit label.
    pub circuit: String,
    /// Backend label from the job spec (stable even on failure).
    pub backend: String,
    /// Scheme spec label.
    pub scheme: String,
    /// Job seed.
    pub seed: u64,
    /// Terminal state.
    pub status: JobStatus,
    /// Wall-clock seconds the job took: `queue_seconds + exec_seconds`
    /// (kept as the sum so the historical column stays comparable).
    pub seconds: f64,
    /// Seconds the job waited in the dispatch queue before a worker
    /// picked it up.
    pub queue_seconds: f64,
    /// Seconds the job executed (including artifact-cache waits).
    pub exec_seconds: f64,
    /// Metrics of a successful run.
    pub metrics: Option<JobMetrics>,
    /// Error message of a failed run.
    pub error: Option<String>,
}

/// A consumer of job records, invoked in completion order as the
/// campaign runs — the streaming half of the engine's output (the other
/// half being the [`CampaignOutcome`](crate::CampaignOutcome) returned
/// at the end).
pub trait ReportSink: Send {
    /// Consumes one record. An error cancels the campaign.
    ///
    /// # Errors
    ///
    /// Sink-specific; treated as a hard campaign error.
    fn accept(&mut self, record: &JobRecord) -> Result<(), BatchError>;

    /// Called once after the last record (flush point).
    ///
    /// # Errors
    ///
    /// Sink-specific; surfaced by [`CampaignEngine::run`](crate::CampaignEngine::run).
    fn finish(&mut self) -> Result<(), BatchError> {
        Ok(())
    }
}

/// A sink that keeps every record in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The records, in completion order.
    pub records: Vec<JobRecord>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl ReportSink for MemorySink {
    fn accept(&mut self, record: &JobRecord) -> Result<(), BatchError> {
        self.records.push(record.clone());
        Ok(())
    }
}

/// A sink writing one JSON object per line (JSONL), schema-validating
/// every row before it is written — a schema regression fails the
/// campaign instead of silently corrupting the output file. Follows the
/// hand-rolled JSON conventions of `bist_bench::timing` (no serde in
/// this offline environment).
///
/// The sink doubles as the campaign's write-ahead journal: every row is
/// flushed to the OS as soon as it is accepted, so a killed process
/// loses at most the one row it was writing (a torn final line), and
/// `--resume` can replay every completed job from the file. Stamp rows
/// with [`with_fingerprint`](JsonlSink::with_fingerprint) so a resume
/// against a *different* campaign configuration is refused instead of
/// silently merged.
pub struct JsonlSink {
    path: PathBuf,
    out: std::io::BufWriter<std::fs::File>,
    rows: usize,
    fingerprint: Option<String>,
}

impl JsonlSink {
    /// Creates/truncates `path`.
    ///
    /// # Errors
    ///
    /// I/O errors from file creation.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, BatchError> {
        let path = path.into();
        let file = std::fs::File::create(&path).map_err(|e| {
            BatchError::Io(std::io::Error::new(
                e.kind(),
                format!("creating JSONL file `{}`: {e}", path.display()),
            ))
        })?;
        Ok(JsonlSink { path, out: std::io::BufWriter::new(file), rows: 0, fingerprint: None })
    }

    /// Reopens an existing journal for appending, repairing a torn
    /// trailing line first (the file is truncated back to its last
    /// complete, schema-valid row). [`rows`](JsonlSink::rows) starts at
    /// the count of surviving rows, so it always reflects the journal's
    /// total. An invalid line *before* the end is a hard error — torn
    /// writes only ever damage the tail.
    ///
    /// # Errors
    ///
    /// I/O errors, or mid-file schema violations.
    pub fn append(path: impl Into<PathBuf>) -> Result<Self, BatchError> {
        let path = path.into();
        let decorate = |verb: &str, e: std::io::Error| {
            BatchError::Io(std::io::Error::new(
                e.kind(),
                format!("{verb} JSONL journal `{}`: {e}", path.display()),
            ))
        };
        let text = std::fs::read_to_string(&path).map_err(|e| decorate("reading", e))?;
        let mut rows = 0;
        let mut valid_len = 0u64;
        let mut offset = 0usize;
        // A valid final row may have lost only its newline; keep it and
        // terminate it below instead of rerunning its job.
        let mut needs_newline = false;
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        for (i, raw) in lines.iter().enumerate() {
            let line = raw.trim_end_matches(['\n', '\r']);
            if line.trim().is_empty() {
                offset += raw.len();
                valid_len = offset as u64;
                continue;
            }
            match validate_jsonl_line(line) {
                Ok(()) => {
                    offset += raw.len();
                    valid_len = offset as u64;
                    rows += 1;
                    needs_newline = !raw.ends_with('\n');
                }
                // A torn trailing row is the crash signature; drop it.
                Err(_) if i == lines.len() - 1 => break,
                Err(e) => {
                    return Err(BatchError::Config(format!(
                        "JSONL journal `{}` line {}: {e}",
                        path.display(),
                        i + 1
                    )))
                }
            }
        }
        if valid_len < text.len() as u64 {
            let repair = std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| decorate("repairing", e))?;
            repair.set_len(valid_len).map_err(|e| decorate("repairing", e))?;
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| decorate("appending to", e))?;
        let mut out = std::io::BufWriter::new(file);
        if needs_newline {
            out.write_all(b"\n").map_err(|e| decorate("repairing", e))?;
        }
        Ok(JsonlSink { path, out, rows, fingerprint: None })
    }

    /// Stamps every subsequent row with an `"fp"` key carrying the
    /// campaign's configuration fingerprint (see
    /// [`Campaign::fingerprint`](crate::Campaign::fingerprint)).
    #[must_use]
    pub fn with_fingerprint(mut self, fingerprint: impl Into<String>) -> Self {
        self.fingerprint = Some(fingerprint.into());
        self
    }

    /// The output path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows written so far (including rows inherited through
    /// [`append`](JsonlSink::append)).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }
}

impl ReportSink for JsonlSink {
    fn accept(&mut self, record: &JobRecord) -> Result<(), BatchError> {
        let mut line = record_to_json(record);
        if let Some(fp) = &self.fingerprint {
            line.truncate(line.len() - 1);
            line.push_str(&format!(", \"fp\": \"{fp}\"}}"));
        }
        validate_jsonl_line(&line).map_err(|e| {
            BatchError::Config(format!("JSONL row failed schema validation: {e}: {line}"))
        })?;
        writeln!(self.out, "{line}")?;
        // Write-ahead discipline: the row reaches the OS before the job
        // is considered recorded, so a crash strands at most a torn
        // final line (which append()/ResumeLog repair).
        self.out.flush()?;
        self.rows += 1;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), BatchError> {
        self.out.flush()?;
        Ok(())
    }
}

/// The replayable contents of a crash-interrupted JSONL journal: every
/// complete, fingerprint-matching `"ok"` row parsed back into its
/// [`JobRecord`]. Failed rows are dropped (their jobs rerun), and a torn
/// trailing line is tolerated and reported via
/// [`truncated`](ResumeLog::truncated).
#[derive(Debug)]
pub struct ResumeLog {
    records: Vec<JobRecord>,
    rows: usize,
    truncated: bool,
}

impl ResumeLog {
    /// Loads `path` and keeps the `"ok"` rows stamped with
    /// `fingerprint`. A row stamped with a *different* fingerprint (or
    /// none) is a configuration mismatch and a hard error: replaying it
    /// would merge results from a different campaign.
    ///
    /// # Errors
    ///
    /// I/O errors, mid-file corruption, or a fingerprint mismatch.
    pub fn load(path: impl AsRef<Path>, fingerprint: &str) -> Result<Self, BatchError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            BatchError::Io(std::io::Error::new(
                e.kind(),
                format!("reading resume journal `{}`: {e}", path.display()),
            ))
        })?;
        let lines: Vec<(usize, &str)> =
            text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty()).collect();
        let mut records = Vec::new();
        let mut rows = 0;
        let mut truncated = false;
        for (position, (i, line)) in lines.iter().enumerate() {
            let parsed = match parse_record(line) {
                Ok(parsed) => parsed,
                Err(_) if position == lines.len() - 1 => {
                    truncated = true;
                    break;
                }
                Err(e) => {
                    return Err(BatchError::Config(format!(
                        "resume journal `{}` line {}: {e}",
                        path.display(),
                        i + 1
                    )))
                }
            };
            rows += 1;
            if parsed.fingerprint.as_deref() != Some(fingerprint) {
                return Err(BatchError::Config(format!(
                    "resume journal `{}` line {} was written by a different campaign \
                     configuration (fingerprint {} != {fingerprint})",
                    path.display(),
                    i + 1,
                    parsed.fingerprint.as_deref().unwrap_or("<missing>"),
                )));
            }
            if parsed.record.status == JobStatus::Ok {
                records.push(parsed.record);
            }
        }
        Ok(ResumeLog { records, rows, truncated })
    }

    /// The replayable `"ok"` records, in journal order.
    #[must_use]
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Complete rows read (ok + failed) before any torn tail.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether a torn trailing line was dropped.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

impl Drop for JsonlSink {
    /// Best-effort flush for sinks dropped without
    /// [`finish`](ReportSink::finish) — an early-returning campaign still
    /// leaves every accepted row on disk (I/O errors are deliberately
    /// swallowed here; `finish` is the checked flush point).
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Per-axis roll-up line (one circuit or one backend).
#[derive(Debug, Clone, PartialEq)]
pub struct AxisLine {
    /// Axis value (circuit or backend label).
    pub label: String,
    /// Jobs that completed successfully.
    pub jobs: usize,
    /// Total job seconds spent on this axis value.
    pub seconds: f64,
    /// Mean `T0` fault coverage (detected / total) over ok jobs.
    pub mean_coverage: f64,
    /// Mean loaded fraction (`total_len / |T0|`) over ok jobs.
    pub mean_loaded_fraction: f64,
    /// Mean on-chip storage ratio (scheme bits / monolithic bits).
    pub mean_storage_ratio: f64,
    /// Gates the staged compiler removed (max over ok jobs — every job
    /// of one circuit shares one compile, so this is its removal count).
    pub gates_removed: usize,
}

/// The campaign's final roll-up: totals plus per-circuit and per-backend
/// axis lines.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Jobs in the expanded matrix.
    pub jobs_total: usize,
    /// Jobs that completed successfully.
    pub jobs_ok: usize,
    /// Jobs that ran and failed.
    pub jobs_failed: usize,
    /// Jobs skipped after cancellation.
    pub jobs_skipped: usize,
    /// Wall-clock seconds of the whole campaign.
    pub wall_seconds: f64,
    /// Sum of per-job seconds (> wall when workers run concurrently).
    pub job_seconds: f64,
    /// Sum of per-job queue-wait seconds (time spent in the dispatch
    /// queue, not executing).
    pub queue_seconds: f64,
    /// Sum of per-job execute seconds (`job_seconds` minus queue waits).
    pub exec_seconds: f64,
    /// One line per circuit, in label order.
    pub circuits: Vec<AxisLine>,
    /// One line per backend, in label order.
    pub backends: Vec<AxisLine>,
    /// Telemetry snapshot of the campaign's registry (empty unless the
    /// engine ran with an active [`Obs`](bist_obs::Obs) sink).
    pub metrics: bist_obs::MetricsSnapshot,
}

impl CampaignSummary {
    /// Rolls up the records of a finished campaign.
    #[must_use]
    pub fn build(records: &[JobRecord], jobs_total: usize, wall_seconds: f64) -> Self {
        let jobs_ok = records.iter().filter(|r| r.status == JobStatus::Ok).count();
        let jobs_failed = records.len() - jobs_ok;
        let axis = |key: fn(&JobRecord) -> &str| -> Vec<AxisLine> {
            let mut groups: BTreeMap<&str, Vec<&JobRecord>> = BTreeMap::new();
            for r in records {
                groups.entry(key(r)).or_default().push(r);
            }
            groups
                .into_iter()
                .map(|(label, rs)| {
                    let ok: Vec<&&JobRecord> =
                        rs.iter().filter(|r| r.status == JobStatus::Ok).collect();
                    let mean = |f: fn(&JobMetrics) -> f64| {
                        if ok.is_empty() {
                            0.0
                        } else {
                            ok.iter().filter_map(|r| r.metrics.as_ref()).map(f).sum::<f64>()
                                / ok.len() as f64
                        }
                    };
                    AxisLine {
                        label: label.to_string(),
                        jobs: ok.len(),
                        seconds: rs.iter().map(|r| r.seconds).sum(),
                        mean_coverage: mean(|m| {
                            m.faults_detected as f64 / m.faults_total.max(1) as f64
                        }),
                        mean_loaded_fraction: mean(|m| m.loaded_fraction),
                        mean_storage_ratio: mean(|m| {
                            m.scheme_data_bits as f64 / m.monolithic_data_bits.max(1) as f64
                        }),
                        gates_removed: ok
                            .iter()
                            .filter_map(|r| r.metrics.as_ref())
                            .map(|m| m.gates_removed)
                            .max()
                            .unwrap_or(0),
                    }
                })
                .collect()
        };
        CampaignSummary {
            jobs_total,
            jobs_ok,
            jobs_failed,
            jobs_skipped: jobs_total - records.len(),
            wall_seconds,
            job_seconds: records.iter().map(|r| r.seconds).sum(),
            queue_seconds: records.iter().map(|r| r.queue_seconds).sum(),
            exec_seconds: records.iter().map(|r| r.exec_seconds).sum(),
            circuits: axis(|r| &r.circuit),
            backends: axis(|r| &r.backend),
            metrics: bist_obs::MetricsSnapshot::default(),
        }
    }

    /// FNV-1a digest of the summary's *deterministic* fields: job
    /// counts, per-axis labels, ok-job counts, means (hashed via
    /// [`f64::to_bits`]) and gates removed. All timing (wall, job,
    /// queue, exec seconds) and telemetry are excluded, so a chaos run
    /// that healed through retries — or a killed campaign merged back
    /// together with `--resume` — digests identically to the fault-free
    /// run of the same campaign. That equality is the resilience
    /// layer's acceptance criterion.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fn eat(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for count in [self.jobs_total, self.jobs_ok, self.jobs_failed, self.jobs_skipped] {
            eat(&mut h, &(count as u64).to_le_bytes());
        }
        for axis in [&self.circuits, &self.backends] {
            for line in axis {
                eat(&mut h, line.label.as_bytes());
                eat(&mut h, &[0]);
                eat(&mut h, &(line.jobs as u64).to_le_bytes());
                eat(&mut h, &line.mean_coverage.to_bits().to_le_bytes());
                eat(&mut h, &line.mean_loaded_fraction.to_bits().to_le_bytes());
                eat(&mut h, &line.mean_storage_ratio.to_bits().to_le_bytes());
                eat(&mut h, &(line.gates_removed as u64).to_le_bytes());
            }
        }
        h
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} jobs ({} ok, {} failed, {} skipped) in {:.2}s wall / {:.2}s job time \
             ({:.2}s queued + {:.2}s executing)",
            self.jobs_total,
            self.jobs_ok,
            self.jobs_failed,
            self.jobs_skipped,
            self.wall_seconds,
            self.job_seconds,
            self.queue_seconds,
            self.exec_seconds,
        )?;
        writeln!(
            f,
            "  {:<10} {:>4} {:>9} {:>9} {:>8} {:>8} {:>8}",
            "circuit", "ok", "seconds", "coverage", "loaded", "storage", "removed"
        )?;
        for line in &self.circuits {
            writeln!(
                f,
                "  {:<10} {:>4} {:>9.3} {:>8.1}% {:>7.0}% {:>7.0}% {:>8}",
                line.label,
                line.jobs,
                line.seconds,
                100.0 * line.mean_coverage,
                100.0 * line.mean_loaded_fraction,
                100.0 * line.mean_storage_ratio,
                line.gates_removed,
            )?;
        }
        writeln!(f, "  {:<18} {:>4} {:>9}", "backend", "ok", "seconds")?;
        for line in &self.backends {
            writeln!(f, "  {:<18} {:>4} {:>9.3}", line.label, line.jobs, line.seconds)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_record(job: usize, circuit: &str, backend: &str, seconds: f64) -> JobRecord {
        JobRecord {
            job,
            circuit: circuit.to_string(),
            backend: backend.to_string(),
            scheme: "default".to_string(),
            seed: 1,
            status: JobStatus::Ok,
            seconds,
            queue_seconds: seconds * 0.25,
            exec_seconds: seconds * 0.75,
            metrics: Some(JobMetrics {
                engine: "packed64".to_string(),
                faults_total: 32,
                faults_detected: 32,
                t0_len: 10,
                n: 2,
                set_count: 2,
                total_len: 5,
                max_len: 3,
                applied_test_len: 80,
                loaded_fraction: 0.5,
                scheme_data_bits: 12,
                monolithic_data_bits: 40,
                gates_removed: 4,
                verified: Some(true),
            }),
            error: None,
        }
    }

    fn failed_record(job: usize) -> JobRecord {
        JobRecord {
            job,
            circuit: "bad".to_string(),
            backend: "packed".to_string(),
            scheme: "default".to_string(),
            seed: 1,
            status: JobStatus::Failed,
            seconds: 0.0,
            queue_seconds: 0.0,
            exec_seconds: 0.0,
            metrics: None,
            error: Some("boom".to_string()),
        }
    }

    #[test]
    fn summary_rolls_up_axes_and_counts() {
        let records = vec![
            ok_record(0, "s27", "packed", 0.5),
            ok_record(1, "s27", "scalar", 1.5),
            ok_record(2, "a298", "packed", 2.0),
            failed_record(3),
        ];
        let summary = CampaignSummary::build(&records, 6, 3.0);
        assert_eq!(summary.jobs_total, 6);
        assert_eq!(summary.jobs_ok, 3);
        assert_eq!(summary.jobs_failed, 1);
        assert_eq!(summary.jobs_skipped, 2);
        assert!((summary.job_seconds - 4.0).abs() < 1e-9);
        // Queue + execute reconcile to total job time.
        assert!((summary.queue_seconds - 1.0).abs() < 1e-9);
        assert!((summary.exec_seconds - 3.0).abs() < 1e-9);
        assert!((summary.queue_seconds + summary.exec_seconds - summary.job_seconds).abs() < 1e-9);
        assert!(summary.metrics.is_empty(), "build() starts with no telemetry");
        assert!(summary.to_string().contains("queued"));
        assert_eq!(summary.circuits.len(), 3); // a298, bad, s27
        let s27 = summary.circuits.iter().find(|l| l.label == "s27").unwrap();
        assert_eq!(s27.jobs, 2);
        assert!((s27.mean_coverage - 1.0).abs() < 1e-9);
        assert!((s27.mean_loaded_fraction - 0.5).abs() < 1e-9);
        assert_eq!(s27.gates_removed, 4);
        let packed = summary.backends.iter().find(|l| l.label == "packed").unwrap();
        assert_eq!(packed.jobs, 2);
        let rendered = summary.to_string();
        assert!(rendered.contains("6 jobs"));
        assert!(rendered.contains("s27"));
    }

    #[test]
    fn memory_sink_collects() {
        let mut sink = MemorySink::new();
        sink.accept(&ok_record(0, "s27", "packed", 0.1)).unwrap();
        sink.accept(&failed_record(1)).unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.records.len(), 2);
        assert_eq!(sink.records[1].status, JobStatus::Failed);
    }

    #[test]
    fn jsonl_sink_writes_valid_rows() {
        let dir = std::env::temp_dir().join("bist_batch_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.accept(&ok_record(0, "s27", "packed", 0.1)).unwrap();
        sink.accept(&failed_record(1)).unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.rows(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::jsonl::validate_jsonl(&text).unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn jsonl_sink_flushes_on_drop_without_finish() {
        // A sink dropped mid-campaign (early return, cancellation) must
        // leave byte-identical output to one that was finish()ed: the
        // Drop impl flushes the BufWriter.
        let dir = std::env::temp_dir().join("bist_batch_drop_flush_test");
        std::fs::create_dir_all(&dir).unwrap();
        let records = [ok_record(0, "s27", "packed", 0.1), failed_record(1)];

        let finished = dir.join("finished.jsonl");
        let mut sink = JsonlSink::create(&finished).unwrap();
        for r in &records {
            sink.accept(r).unwrap();
        }
        sink.finish().unwrap();
        drop(sink);

        let dropped = dir.join("dropped.jsonl");
        let mut sink = JsonlSink::create(&dropped).unwrap();
        for r in &records {
            sink.accept(r).unwrap();
        }
        drop(sink); // no finish()

        let a = std::fs::read(&finished).unwrap();
        let b = std::fs::read(&dropped).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "drop-flushed bytes differ from finished bytes");
        assert_eq!(crate::jsonl::validate_jsonl(&String::from_utf8(b).unwrap()).unwrap(), 2);
        std::fs::remove_file(&finished).unwrap();
        std::fs::remove_file(&dropped).unwrap();
    }

    #[test]
    fn rows_reach_disk_before_finish() {
        // Write-ahead discipline: after accept() returns, the row is
        // readable by another handle even though the sink is still open.
        let dir = std::env::temp_dir().join("bist_batch_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.accept(&ok_record(0, "s27", "packed", 0.1)).unwrap();
        let mid = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::jsonl::validate_jsonl(&mid).unwrap(), 1, "row not flushed per accept");
        sink.accept(&failed_record(1)).unwrap();
        drop(sink);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn journal_rows_round_trip_through_parse_record() {
        for record in [ok_record(3, "s27", "sharded:0:256", 0.25), failed_record(7)] {
            let line = record_to_json(&record);
            let parsed = parse_record(&line).unwrap();
            assert_eq!(format!("{:?}", parsed.record), format!("{record:?}"));
            assert_eq!(parsed.fingerprint, None);
        }
    }

    #[test]
    fn fingerprint_stamp_survives_validation_and_round_trips() {
        let dir = std::env::temp_dir().join("bist_batch_fp_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fp.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap().with_fingerprint("deadbeef00000001");
        sink.accept(&ok_record(0, "s27", "packed", 0.1)).unwrap();
        sink.finish().unwrap();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::jsonl::validate_jsonl(&text).unwrap(), 1, "fp key must stay valid");
        let parsed = parse_record(text.lines().next().unwrap()).unwrap();
        assert_eq!(parsed.fingerprint.as_deref(), Some("deadbeef00000001"));
        // ResumeLog accepts the matching fingerprint, refuses another.
        let log = ResumeLog::load(&path, "deadbeef00000001").unwrap();
        assert_eq!(log.records().len(), 1);
        assert_eq!(log.rows(), 1);
        assert!(!log.truncated());
        let err = ResumeLog::load(&path, "0000000000000000").unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_repairs_a_torn_tail_and_resume_drops_it() {
        let dir = std::env::temp_dir().join("bist_batch_torn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap().with_fingerprint("feedface01020304");
        sink.accept(&ok_record(0, "s27", "packed", 0.1)).unwrap();
        sink.accept(&failed_record(1)).unwrap();
        sink.finish().unwrap();
        drop(sink);
        // Simulate a kill mid-write: chop the journal mid-row.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 17]).unwrap();

        let log = ResumeLog::load(&path, "feedface01020304").unwrap();
        assert!(log.truncated(), "torn tail must be reported");
        assert_eq!(log.rows(), 1);
        assert_eq!(log.records().len(), 1, "only the complete ok row replays");
        assert_eq!(log.records()[0].job, 0);

        let mut sink = JsonlSink::append(&path).unwrap().with_fingerprint("feedface01020304");
        assert_eq!(sink.rows(), 1, "append inherits the surviving row");
        sink.accept(&failed_record(1)).unwrap();
        sink.finish().unwrap();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::jsonl::validate_jsonl(&text).unwrap(), 2, "repaired + appended");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_only_journal_resumes_as_a_fresh_run() {
        // A client killed mid-first-write strands a journal holding only
        // a torn trailing fragment — zero valid rows. Resuming from it
        // must behave exactly like a fresh campaign run, not a hard
        // error.
        let dir = std::env::temp_dir().join("bist_batch_torn_only_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn_only.jsonl");
        std::fs::write(&path, "{\"job\": 0, \"circ").unwrap();

        let log = ResumeLog::load(&path, "feedface01020304").unwrap();
        assert!(log.truncated(), "the fragment is reported, not fatal");
        assert_eq!(log.rows(), 0);
        assert!(log.records().is_empty(), "nothing replays — every job reruns");

        // Appending repairs the fragment away and starts from row zero.
        let mut sink = JsonlSink::append(&path).unwrap().with_fingerprint("feedface01020304");
        assert_eq!(sink.rows(), 0);
        sink.accept(&ok_record(0, "s27", "packed", 0.1)).unwrap();
        sink.finish().unwrap();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::jsonl::validate_jsonl(&text).unwrap(), 1);
        assert_eq!(text.lines().count(), 1, "the fragment is gone, not prepended");

        // An empty journal — created at submission, never written — is
        // the same story without even a truncation flag.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let log = ResumeLog::load(&empty, "feedface01020304").unwrap();
        assert_eq!(log.rows(), 0);
        assert!(!log.truncated());
        assert!(log.records().is_empty());
        let sink = JsonlSink::append(&empty).unwrap();
        assert_eq!(sink.rows(), 0);
        drop(sink);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&empty).unwrap();
    }

    #[test]
    fn append_keeps_a_valid_unterminated_final_row() {
        let dir = std::env::temp_dir().join("bist_batch_noeol_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("noeol.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.accept(&ok_record(0, "s27", "packed", 0.1)).unwrap();
        sink.finish().unwrap();
        drop(sink);
        // Crash stranded a complete row missing only its newline.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 1]).unwrap();
        let mut sink = JsonlSink::append(&path).unwrap();
        assert_eq!(sink.rows(), 1, "complete row is kept, not rerun");
        sink.accept(&failed_record(1)).unwrap();
        sink.finish().unwrap();
        drop(sink);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::jsonl::validate_jsonl(&text).unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_rejects_mid_file_corruption() {
        let dir = std::env::temp_dir().join("bist_batch_midcorrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mid.jsonl");
        let good = record_to_json(&ok_record(0, "s27", "packed", 0.1));
        std::fs::write(&path, format!("{{\"not\": \"a row\"}}\n{good}\n")).unwrap();
        let err = JsonlSink::append(&path).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = ResumeLog::load(&path, "x").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn digest_tracks_results_and_ignores_timing() {
        let records = vec![
            ok_record(0, "s27", "packed", 0.5),
            ok_record(1, "s27", "scalar", 1.5),
            failed_record(2),
        ];
        let a = CampaignSummary::build(&records, 3, 3.0);
        // Same results with totally different timings digest identically.
        let slow: Vec<JobRecord> = records
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.seconds *= 100.0;
                r.exec_seconds *= 100.0;
                r
            })
            .collect();
        let b = CampaignSummary::build(&slow, 3, 500.0);
        assert_eq!(a.digest(), b.digest(), "timing must not affect the digest");
        // A changed result does.
        let mut fewer = records.clone();
        fewer.pop();
        let c = CampaignSummary::build(&fewer, 3, 3.0);
        assert_ne!(a.digest(), c.digest());
    }
}
