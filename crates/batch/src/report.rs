//! Result streaming and roll-up: [`JobRecord`]s flow through pluggable
//! [`ReportSink`]s as jobs complete, and a [`CampaignSummary`] rolls up
//! coverage, storage and wall time per axis at the end.

use crate::jsonl::{record_to_json, validate_jsonl_line};
use crate::BatchError;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Terminal state of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The session ran to completion.
    Ok,
    /// The session (or an artifact it needed) failed.
    Failed,
}

impl JobStatus {
    /// The status string used in JSONL rows (`"ok"` / `"failed"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Failed => "failed",
        }
    }
}

/// The result metrics of one successful job (a flattened
/// [`SessionReport`](subseq_bist::SessionReport)).
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// Name the simulation engine reported (e.g. `"sharded256"`).
    pub engine: String,
    /// Size of the collapsed fault universe.
    pub faults_total: usize,
    /// Faults detected by `T0`.
    pub faults_detected: usize,
    /// `|T0|`.
    pub t0_len: usize,
    /// Best repetition count.
    pub n: usize,
    /// `|S|` after compaction.
    pub set_count: usize,
    /// Total loaded length after compaction.
    pub total_len: usize,
    /// Maximum loaded length after compaction.
    pub max_len: usize,
    /// Applied at-speed test length (`8·n·total_len`).
    pub applied_test_len: usize,
    /// `total_len / |T0|` — the paper's headline ratio.
    pub loaded_fraction: f64,
    /// On-chip test-data bits of the scheme memory.
    pub scheme_data_bits: usize,
    /// Test-data bits of storing all of `T0` monolithically.
    pub monolithic_data_bits: usize,
    /// Gates the staged compiler removed from the simulated tape (0 for
    /// an unoptimized job).
    pub gates_removed: usize,
    /// Post-run verification outcome (`None` if disabled).
    pub verified: Option<bool>,
}

/// One completed (or failed) job, flattened for streaming to sinks.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (position in the campaign matrix).
    pub job: usize,
    /// Circuit label.
    pub circuit: String,
    /// Backend label from the job spec (stable even on failure).
    pub backend: String,
    /// Scheme spec label.
    pub scheme: String,
    /// Job seed.
    pub seed: u64,
    /// Terminal state.
    pub status: JobStatus,
    /// Wall-clock seconds the job took: `queue_seconds + exec_seconds`
    /// (kept as the sum so the historical column stays comparable).
    pub seconds: f64,
    /// Seconds the job waited in the dispatch queue before a worker
    /// picked it up.
    pub queue_seconds: f64,
    /// Seconds the job executed (including artifact-cache waits).
    pub exec_seconds: f64,
    /// Metrics of a successful run.
    pub metrics: Option<JobMetrics>,
    /// Error message of a failed run.
    pub error: Option<String>,
}

/// A consumer of job records, invoked in completion order as the
/// campaign runs — the streaming half of the engine's output (the other
/// half being the [`CampaignOutcome`](crate::CampaignOutcome) returned
/// at the end).
pub trait ReportSink: Send {
    /// Consumes one record. An error cancels the campaign.
    ///
    /// # Errors
    ///
    /// Sink-specific; treated as a hard campaign error.
    fn accept(&mut self, record: &JobRecord) -> Result<(), BatchError>;

    /// Called once after the last record (flush point).
    ///
    /// # Errors
    ///
    /// Sink-specific; surfaced by [`CampaignEngine::run`](crate::CampaignEngine::run).
    fn finish(&mut self) -> Result<(), BatchError> {
        Ok(())
    }
}

/// A sink that keeps every record in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The records, in completion order.
    pub records: Vec<JobRecord>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl ReportSink for MemorySink {
    fn accept(&mut self, record: &JobRecord) -> Result<(), BatchError> {
        self.records.push(record.clone());
        Ok(())
    }
}

/// A sink writing one JSON object per line (JSONL), schema-validating
/// every row before it is written — a schema regression fails the
/// campaign instead of silently corrupting the output file. Follows the
/// hand-rolled JSON conventions of `bist_bench::timing` (no serde in
/// this offline environment).
pub struct JsonlSink {
    path: PathBuf,
    out: std::io::BufWriter<std::fs::File>,
    rows: usize,
}

impl JsonlSink {
    /// Creates/truncates `path`.
    ///
    /// # Errors
    ///
    /// I/O errors from file creation.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, BatchError> {
        let path = path.into();
        let file = std::fs::File::create(&path).map_err(|e| {
            BatchError::Io(std::io::Error::new(
                e.kind(),
                format!("creating JSONL file `{}`: {e}", path.display()),
            ))
        })?;
        Ok(JsonlSink { path, out: std::io::BufWriter::new(file), rows: 0 })
    }

    /// The output path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows written so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }
}

impl ReportSink for JsonlSink {
    fn accept(&mut self, record: &JobRecord) -> Result<(), BatchError> {
        let line = record_to_json(record);
        validate_jsonl_line(&line).map_err(|e| {
            BatchError::Config(format!("JSONL row failed schema validation: {e}: {line}"))
        })?;
        writeln!(self.out, "{line}")?;
        self.rows += 1;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), BatchError> {
        self.out.flush()?;
        Ok(())
    }
}

impl Drop for JsonlSink {
    /// Best-effort flush for sinks dropped without
    /// [`finish`](ReportSink::finish) — an early-returning campaign still
    /// leaves every accepted row on disk (I/O errors are deliberately
    /// swallowed here; `finish` is the checked flush point).
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

/// Per-axis roll-up line (one circuit or one backend).
#[derive(Debug, Clone, PartialEq)]
pub struct AxisLine {
    /// Axis value (circuit or backend label).
    pub label: String,
    /// Jobs that completed successfully.
    pub jobs: usize,
    /// Total job seconds spent on this axis value.
    pub seconds: f64,
    /// Mean `T0` fault coverage (detected / total) over ok jobs.
    pub mean_coverage: f64,
    /// Mean loaded fraction (`total_len / |T0|`) over ok jobs.
    pub mean_loaded_fraction: f64,
    /// Mean on-chip storage ratio (scheme bits / monolithic bits).
    pub mean_storage_ratio: f64,
    /// Gates the staged compiler removed (max over ok jobs — every job
    /// of one circuit shares one compile, so this is its removal count).
    pub gates_removed: usize,
}

/// The campaign's final roll-up: totals plus per-circuit and per-backend
/// axis lines.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// Jobs in the expanded matrix.
    pub jobs_total: usize,
    /// Jobs that completed successfully.
    pub jobs_ok: usize,
    /// Jobs that ran and failed.
    pub jobs_failed: usize,
    /// Jobs skipped after cancellation.
    pub jobs_skipped: usize,
    /// Wall-clock seconds of the whole campaign.
    pub wall_seconds: f64,
    /// Sum of per-job seconds (> wall when workers run concurrently).
    pub job_seconds: f64,
    /// Sum of per-job queue-wait seconds (time spent in the dispatch
    /// queue, not executing).
    pub queue_seconds: f64,
    /// Sum of per-job execute seconds (`job_seconds` minus queue waits).
    pub exec_seconds: f64,
    /// One line per circuit, in label order.
    pub circuits: Vec<AxisLine>,
    /// One line per backend, in label order.
    pub backends: Vec<AxisLine>,
    /// Telemetry snapshot of the campaign's registry (empty unless the
    /// engine ran with an active [`Obs`](bist_obs::Obs) sink).
    pub metrics: bist_obs::MetricsSnapshot,
}

impl CampaignSummary {
    /// Rolls up the records of a finished campaign.
    #[must_use]
    pub fn build(records: &[JobRecord], jobs_total: usize, wall_seconds: f64) -> Self {
        let jobs_ok = records.iter().filter(|r| r.status == JobStatus::Ok).count();
        let jobs_failed = records.len() - jobs_ok;
        let axis = |key: fn(&JobRecord) -> &str| -> Vec<AxisLine> {
            let mut groups: BTreeMap<&str, Vec<&JobRecord>> = BTreeMap::new();
            for r in records {
                groups.entry(key(r)).or_default().push(r);
            }
            groups
                .into_iter()
                .map(|(label, rs)| {
                    let ok: Vec<&&JobRecord> =
                        rs.iter().filter(|r| r.status == JobStatus::Ok).collect();
                    let mean = |f: fn(&JobMetrics) -> f64| {
                        if ok.is_empty() {
                            0.0
                        } else {
                            ok.iter().filter_map(|r| r.metrics.as_ref()).map(f).sum::<f64>()
                                / ok.len() as f64
                        }
                    };
                    AxisLine {
                        label: label.to_string(),
                        jobs: ok.len(),
                        seconds: rs.iter().map(|r| r.seconds).sum(),
                        mean_coverage: mean(|m| {
                            m.faults_detected as f64 / m.faults_total.max(1) as f64
                        }),
                        mean_loaded_fraction: mean(|m| m.loaded_fraction),
                        mean_storage_ratio: mean(|m| {
                            m.scheme_data_bits as f64 / m.monolithic_data_bits.max(1) as f64
                        }),
                        gates_removed: ok
                            .iter()
                            .filter_map(|r| r.metrics.as_ref())
                            .map(|m| m.gates_removed)
                            .max()
                            .unwrap_or(0),
                    }
                })
                .collect()
        };
        CampaignSummary {
            jobs_total,
            jobs_ok,
            jobs_failed,
            jobs_skipped: jobs_total - records.len(),
            wall_seconds,
            job_seconds: records.iter().map(|r| r.seconds).sum(),
            queue_seconds: records.iter().map(|r| r.queue_seconds).sum(),
            exec_seconds: records.iter().map(|r| r.exec_seconds).sum(),
            circuits: axis(|r| &r.circuit),
            backends: axis(|r| &r.backend),
            metrics: bist_obs::MetricsSnapshot::default(),
        }
    }
}

impl fmt::Display for CampaignSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign: {} jobs ({} ok, {} failed, {} skipped) in {:.2}s wall / {:.2}s job time \
             ({:.2}s queued + {:.2}s executing)",
            self.jobs_total,
            self.jobs_ok,
            self.jobs_failed,
            self.jobs_skipped,
            self.wall_seconds,
            self.job_seconds,
            self.queue_seconds,
            self.exec_seconds,
        )?;
        writeln!(
            f,
            "  {:<10} {:>4} {:>9} {:>9} {:>8} {:>8} {:>8}",
            "circuit", "ok", "seconds", "coverage", "loaded", "storage", "removed"
        )?;
        for line in &self.circuits {
            writeln!(
                f,
                "  {:<10} {:>4} {:>9.3} {:>8.1}% {:>7.0}% {:>7.0}% {:>8}",
                line.label,
                line.jobs,
                line.seconds,
                100.0 * line.mean_coverage,
                100.0 * line.mean_loaded_fraction,
                100.0 * line.mean_storage_ratio,
                line.gates_removed,
            )?;
        }
        writeln!(f, "  {:<18} {:>4} {:>9}", "backend", "ok", "seconds")?;
        for line in &self.backends {
            writeln!(f, "  {:<18} {:>4} {:>9.3}", line.label, line.jobs, line.seconds)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_record(job: usize, circuit: &str, backend: &str, seconds: f64) -> JobRecord {
        JobRecord {
            job,
            circuit: circuit.to_string(),
            backend: backend.to_string(),
            scheme: "default".to_string(),
            seed: 1,
            status: JobStatus::Ok,
            seconds,
            queue_seconds: seconds * 0.25,
            exec_seconds: seconds * 0.75,
            metrics: Some(JobMetrics {
                engine: "packed64".to_string(),
                faults_total: 32,
                faults_detected: 32,
                t0_len: 10,
                n: 2,
                set_count: 2,
                total_len: 5,
                max_len: 3,
                applied_test_len: 80,
                loaded_fraction: 0.5,
                scheme_data_bits: 12,
                monolithic_data_bits: 40,
                gates_removed: 4,
                verified: Some(true),
            }),
            error: None,
        }
    }

    fn failed_record(job: usize) -> JobRecord {
        JobRecord {
            job,
            circuit: "bad".to_string(),
            backend: "packed".to_string(),
            scheme: "default".to_string(),
            seed: 1,
            status: JobStatus::Failed,
            seconds: 0.0,
            queue_seconds: 0.0,
            exec_seconds: 0.0,
            metrics: None,
            error: Some("boom".to_string()),
        }
    }

    #[test]
    fn summary_rolls_up_axes_and_counts() {
        let records = vec![
            ok_record(0, "s27", "packed", 0.5),
            ok_record(1, "s27", "scalar", 1.5),
            ok_record(2, "a298", "packed", 2.0),
            failed_record(3),
        ];
        let summary = CampaignSummary::build(&records, 6, 3.0);
        assert_eq!(summary.jobs_total, 6);
        assert_eq!(summary.jobs_ok, 3);
        assert_eq!(summary.jobs_failed, 1);
        assert_eq!(summary.jobs_skipped, 2);
        assert!((summary.job_seconds - 4.0).abs() < 1e-9);
        // Queue + execute reconcile to total job time.
        assert!((summary.queue_seconds - 1.0).abs() < 1e-9);
        assert!((summary.exec_seconds - 3.0).abs() < 1e-9);
        assert!((summary.queue_seconds + summary.exec_seconds - summary.job_seconds).abs() < 1e-9);
        assert!(summary.metrics.is_empty(), "build() starts with no telemetry");
        assert!(summary.to_string().contains("queued"));
        assert_eq!(summary.circuits.len(), 3); // a298, bad, s27
        let s27 = summary.circuits.iter().find(|l| l.label == "s27").unwrap();
        assert_eq!(s27.jobs, 2);
        assert!((s27.mean_coverage - 1.0).abs() < 1e-9);
        assert!((s27.mean_loaded_fraction - 0.5).abs() < 1e-9);
        assert_eq!(s27.gates_removed, 4);
        let packed = summary.backends.iter().find(|l| l.label == "packed").unwrap();
        assert_eq!(packed.jobs, 2);
        let rendered = summary.to_string();
        assert!(rendered.contains("6 jobs"));
        assert!(rendered.contains("s27"));
    }

    #[test]
    fn memory_sink_collects() {
        let mut sink = MemorySink::new();
        sink.accept(&ok_record(0, "s27", "packed", 0.1)).unwrap();
        sink.accept(&failed_record(1)).unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.records.len(), 2);
        assert_eq!(sink.records[1].status, JobStatus::Failed);
    }

    #[test]
    fn jsonl_sink_writes_valid_rows() {
        let dir = std::env::temp_dir().join("bist_batch_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.jsonl");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.accept(&ok_record(0, "s27", "packed", 0.1)).unwrap();
        sink.accept(&failed_record(1)).unwrap();
        sink.finish().unwrap();
        assert_eq!(sink.rows(), 2);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::jsonl::validate_jsonl(&text).unwrap(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn jsonl_sink_flushes_on_drop_without_finish() {
        // A sink dropped mid-campaign (early return, cancellation) must
        // leave byte-identical output to one that was finish()ed: the
        // Drop impl flushes the BufWriter.
        let dir = std::env::temp_dir().join("bist_batch_drop_flush_test");
        std::fs::create_dir_all(&dir).unwrap();
        let records = [ok_record(0, "s27", "packed", 0.1), failed_record(1)];

        let finished = dir.join("finished.jsonl");
        let mut sink = JsonlSink::create(&finished).unwrap();
        for r in &records {
            sink.accept(r).unwrap();
        }
        sink.finish().unwrap();
        drop(sink);

        let dropped = dir.join("dropped.jsonl");
        let mut sink = JsonlSink::create(&dropped).unwrap();
        for r in &records {
            sink.accept(r).unwrap();
        }
        drop(sink); // no finish()

        let a = std::fs::read(&finished).unwrap();
        let b = std::fs::read(&dropped).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "drop-flushed bytes differ from finished bytes");
        assert_eq!(crate::jsonl::validate_jsonl(&String::from_utf8(b).unwrap()).unwrap(), 2);
        std::fs::remove_file(&finished).unwrap();
        std::fs::remove_file(&dropped).unwrap();
    }
}
