//! `subseq-bist serve` — the long-lived campaign service.
//!
//! A hand-rolled HTTP/1.1 front end over [`std::net::TcpListener`] (zero
//! new dependencies, the same offline discipline as [`crate::jsonl`])
//! that promotes the batch engine into a daemon:
//!
//! * `POST /campaigns` — submit a campaign spec (the JSON vocabulary of
//!   the `run` CLI flags); responds with a campaign id and the spec's
//!   [`Campaign::fingerprint`].
//! * `GET /campaigns/<id>/results` — streams the campaign's JSONL rows
//!   with chunked transfer-encoding *as jobs complete*, riding the
//!   existing [`ReportSink`] plumbing.
//! * `GET /campaigns/<id>/summary` — blocks until the campaign finishes
//!   and returns the roll-up (job counts and the order-independent
//!   [`CampaignSummary::digest`]).
//! * `GET /metrics` — the process-lifetime [`Registry`] rendered as
//!   metrics JSON, self-validated before it leaves the process.
//! * `GET /healthz` — liveness.
//! * `POST /shutdown` — graceful drain: the in-flight campaign finishes,
//!   queued campaigns are cancelled with their (empty, resumable)
//!   journals left on disk, and the process exits cleanly.
//!
//! Behind the socket sits one process-lifetime [`ArtifactCache`] shared
//! by every campaign via [`CampaignEngine::shared_cache`]: cache keys
//! are campaign-independent (circuit key, seed, `TgenConfig`, pass-set
//! key), so the tape/collapse/`T0` artifacts the paper's flow
//! precomputes are shared *across requests*, under the cache's own
//! byte-budget eviction. Admission control bounds the pending-campaign
//! queue (`429` on overflow) and serves clients round-robin — one
//! campaign per client per turn — so a flood from one client cannot
//! starve the rest. Campaigns execute one at a time on the worker pool
//! (jobs within a campaign run concurrently), which keeps every
//! campaign's summary bit-identical to an offline
//! [`CampaignEngine::run`] of the same spec.
//!
//! Every campaign writes a fingerprint-stamped JSONL journal under
//! [`ServeConfig::journal_dir`], created at submission time — so even a
//! campaign cancelled by shutdown before its first job leaves a valid
//! (empty) journal that `subseq-bist run --resume` accepts as a fresh
//! start.

use crate::cache::{ArtifactCache, CachePolicy};
use crate::campaign::Campaign;
use crate::engine::CampaignEngine;
use crate::jsonl::{escape, record_to_json, Parser};
use crate::report::{CampaignSummary, JobRecord, JsonlSink, ReportSink};
use crate::BatchError;
use bist_obs::{export, CounterHandle, GaugeHandle, Obs, Registry};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use subseq_bist::tgen::TgenConfig;
use subseq_bist::{Backend, CompileOptions};

/// Largest accepted request body: campaign specs are small, and the
/// parser should never be fed an unbounded allocation.
const MAX_BODY_BYTES: usize = 1 << 20;

/// Configuration of a [`CampaignServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker threads per campaign (0 = one per available core).
    pub threads: usize,
    /// Bounded job-queue depth of the engine (≥ 1).
    pub queue_depth: usize,
    /// Admission bound: campaigns queued (not yet running) before
    /// submissions are rejected with `429`.
    pub max_pending: usize,
    /// Residency policy of the process-lifetime artifact cache.
    pub cache_policy: CachePolicy,
    /// Directory for per-campaign JSONL journals.
    pub journal_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            queue_depth: 32,
            max_pending: 16,
            cache_policy: CachePolicy::default(),
            journal_dir: std::env::temp_dir().join("subseq-bist-serve"),
        }
    }
}

/// Parses a `POST /campaigns` body into a [`Campaign`].
///
/// The vocabulary mirrors the `run` CLI flags, with the same defaults
/// (including `"smoke": true` shrinking the matrix exactly like
/// `--smoke`): `circuits` (suite names), `upto`, `backends` (labels in
/// the [`crate::parse_backend`] syntax), `seeds`, `ns`, `postprocess`,
/// `verify`, `optimize` (a [`CompileOptions::parse`] spec), `t0_cap`,
/// `t0_budget`, `smoke`. Unknown keys are rejected — a misspelled field
/// must fail the submission, not silently run a default campaign. The
/// spec is expanded eagerly so an invalid matrix fails here (HTTP 400)
/// rather than inside the worker pool.
///
/// Public so tests (and clients embedding the crate) can build the
/// *identical* offline [`Campaign`] from the same JSON they submit over
/// the socket.
///
/// # Errors
///
/// [`BatchError::Config`] describing the first syntax, schema or
/// campaign-shape violation.
pub fn campaign_from_spec(body: &str) -> Result<Campaign, BatchError> {
    let bad = |e: String| BatchError::Config(format!("campaign spec: {e}"));
    let mut circuits: Option<Vec<String>> = None;
    let mut upto: Option<usize> = None;
    let mut backend_tokens: Option<Vec<String>> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut ns: Option<Vec<usize>> = None;
    let mut postprocess = true;
    let mut verify = true;
    let mut optimize_spec: Option<String> = None;
    let mut t0_cap: Option<usize> = None;
    let mut t0_budget: Option<usize> = None;
    let mut smoke = false;

    let mut p = Parser::new(body);
    p.ws();
    p.object(&mut |p, key| {
        p.ws();
        match key {
            "circuits" => circuits = Some(string_array(p)?),
            "upto" => upto = Some(number(p, "upto")?),
            "backends" => backend_tokens = Some(string_array(p)?),
            "seeds" => seeds = Some(number_array(p, "seeds")?),
            "ns" => ns = Some(number_array(p, "ns")?),
            "postprocess" => postprocess = boolean(p)?,
            "verify" => verify = boolean(p)?,
            "optimize" => optimize_spec = Some(p.string()?),
            "t0_cap" => t0_cap = Some(number(p, "t0_cap")?),
            "t0_budget" => t0_budget = Some(number(p, "t0_budget")?),
            "smoke" => smoke = boolean(p)?,
            other => return Err(format!("unknown key `{other}`")),
        }
        Ok(())
    })
    .map_err(bad)?;
    p.ws();
    if !p.at_end() {
        return Err(bad(format!("trailing garbage at byte {}", p.position())));
    }

    // Smoke mode mirrors the CLI: explicit fields always win.
    if smoke {
        upto.get_or_insert(300);
        if ns.is_none() {
            ns = Some(vec![1, 2]);
        }
        if backend_tokens.is_none() {
            backend_tokens = Some(vec!["packed".to_string(), "sharded:0:256".to_string()]);
        }
    }
    let t0_cap = t0_cap.unwrap_or(if smoke { 48 } else { 1024 });
    let t0_budget = t0_budget.unwrap_or(if smoke { 20 } else { 300 });
    let optimize = match optimize_spec.as_deref() {
        None => CompileOptions::none(),
        Some(spec) => CompileOptions::parse(spec).ok_or_else(|| {
            bad(format!("bad optimize passes `{spec}` (expected a subset of `xfds` or `none`)"))
        })?,
    };

    let mut campaign = Campaign::new()
        .verify(verify)
        .optimize(optimize)
        .tgen(TgenConfig::new().max_length(t0_cap).compaction_budget(t0_budget));
    if let Some(seeds) = seeds {
        campaign = campaign.seeds(seeds);
    }
    campaign = match circuits {
        Some(names) => campaign.suite_circuits(names),
        None => campaign.suite_up_to(upto.unwrap_or(3000)),
    };
    if let Some(tokens) = backend_tokens {
        let backends: Vec<Backend> =
            tokens.iter().map(|t| crate::campaign::parse_backend(t)).collect::<Result<_, _>>()?;
        campaign = campaign.backends(backends);
    }
    if let Some(ns) = ns {
        campaign = campaign.ns(ns);
    }
    if !postprocess {
        let schemes: Vec<_> =
            campaign.scheme_specs().iter().cloned().map(|s| s.postprocess(false)).collect();
        campaign = campaign.schemes(schemes);
    }
    // Fail malformed matrices at submission, not inside the pool.
    campaign.expand()?;
    Ok(campaign)
}

fn boolean(p: &mut Parser) -> Result<bool, String> {
    match p.peek() {
        Some(b't') => p.literal("true").map(|()| true),
        Some(b'f') => p.literal("false").map(|()| false),
        _ => Err(format!("expected `true` or `false` at byte {}", p.position())),
    }
}

fn string_array(p: &mut Parser) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    p.array_items(&mut |p| {
        out.push(p.string()?);
        Ok(())
    })?;
    Ok(out)
}

fn number<T: std::str::FromStr>(p: &mut Parser, what: &str) -> Result<T, String> {
    p.raw_number()?.parse().map_err(|_| format!("bad number in `{what}`"))
}

fn number_array<T: std::str::FromStr>(p: &mut Parser, what: &str) -> Result<Vec<T>, String> {
    let mut out = Vec::new();
    p.array_items(&mut |p| {
        out.push(number(p, what)?);
        Ok(())
    })?;
    Ok(out)
}

/// One submitted campaign's lifecycle, shared between the scheduler
/// (writer) and any number of result/summary readers.
struct CampaignState {
    fingerprint: String,
    campaign: Campaign,
    journal: PathBuf,
    progress: Mutex<Progress>,
    progressed: Condvar,
}

#[derive(Default)]
struct Progress {
    /// Fingerprint-stamped JSONL rows in completion order — exactly the
    /// bytes the journal holds, re-served to streaming clients.
    rows: Vec<String>,
    done: bool,
    summary: Option<CampaignSummary>,
    error: Option<String>,
}

/// The admission queue: one FIFO per client, clients served round-robin
/// (one campaign per client per turn) so a burst from one client cannot
/// starve the others.
#[derive(Default)]
struct Admission {
    per_client: BTreeMap<String, VecDeque<u64>>,
    rotation: VecDeque<String>,
    pending: usize,
    closed: bool,
}

impl Admission {
    fn push(&mut self, client: &str, id: u64) {
        let queue = self.per_client.entry(client.to_string()).or_default();
        if queue.is_empty() {
            self.rotation.push_back(client.to_string());
        }
        queue.push_back(id);
        self.pending += 1;
    }

    fn pop(&mut self) -> Option<u64> {
        let client = self.rotation.pop_front()?;
        let queue = self.per_client.get_mut(&client).expect("rotation entry has a queue");
        let id = queue.pop_front().expect("rotation entry is non-empty");
        if queue.is_empty() {
            self.per_client.remove(&client);
        } else {
            self.rotation.push_back(client);
        }
        self.pending -= 1;
        Some(id)
    }
}

/// Everything the connection handlers and the scheduler share.
struct Shared {
    config: ServeConfig,
    registry: Arc<Registry>,
    obs: Obs,
    cache: Arc<ArtifactCache>,
    next_id: AtomicU64,
    admission: Mutex<Admission>,
    admitted: Condvar,
    campaigns: Mutex<HashMap<u64, Arc<CampaignState>>>,
    shutdown: AtomicBool,
    accepted: CounterHandle,
    rejected: CounterHandle,
    completed: CounterHandle,
    requests: CounterHandle,
    pending_gauge: GaugeHandle,
}

/// The campaign service. Bind, then [`run`](Self::run) — the call
/// returns after a `POST /shutdown` has drained the queue.
pub struct CampaignServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl CampaignServer {
    /// Binds the listener, creates the journal directory and the
    /// process-lifetime artifact cache.
    ///
    /// # Errors
    ///
    /// I/O errors from binding or directory creation.
    pub fn bind(config: ServeConfig) -> Result<Self, BatchError> {
        std::fs::create_dir_all(&config.journal_dir)?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let registry = Arc::new(Registry::new());
        let obs = Obs::with_registry(Arc::clone(&registry));
        let cache = Arc::new(ArtifactCache::with_config(&obs, config.cache_policy, None));
        let shared = Arc::new(Shared {
            accepted: obs.counter("serve.campaigns.accepted"),
            rejected: obs.counter("serve.campaigns.rejected"),
            completed: obs.counter("serve.campaigns.completed"),
            requests: obs.counter("serve.requests"),
            pending_gauge: obs.gauge("serve.queue.pending"),
            config,
            registry,
            obs,
            cache,
            next_id: AtomicU64::new(0),
            admission: Mutex::new(Admission::default()),
            admitted: Condvar::new(),
            campaigns: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        Ok(CampaignServer { listener, local_addr, shared })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The process-lifetime metrics registry (shared with every
    /// campaign run — tests read cross-campaign cache counters here).
    #[must_use]
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.registry)
    }

    /// Serves until a `POST /shutdown` drains the queue: the scheduler
    /// finishes the in-flight campaign, cancels queued ones (their
    /// empty journals stay resumable) and the accept loop stops.
    ///
    /// # Errors
    ///
    /// I/O errors from the accept loop.
    pub fn run(self) -> Result<(), BatchError> {
        let scheduler_shared = Arc::clone(&self.shared);
        let scheduler = std::thread::Builder::new()
            .name("campaign-scheduler".to_string())
            .spawn(move || scheduler_loop(&scheduler_shared))
            .map_err(BatchError::Io)?;
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            let _ = std::thread::Builder::new()
                .name("campaign-conn".to_string())
                .spawn(move || handle_connection(stream, &shared));
        }
        scheduler
            .join()
            .map_err(|_| BatchError::Config("campaign scheduler thread panicked".to_string()))?;
        Ok(())
    }
}

/// The scheduler: pops admitted campaigns round-robin and runs them one
/// at a time (jobs within a campaign still fan out over the worker
/// pool). Sequential campaign execution keeps each summary bit-identical
/// to an offline run of the same spec; the shared cache is what carries
/// the cross-campaign speedup.
fn scheduler_loop(shared: &Shared) {
    loop {
        let (next, draining) = {
            let mut admission = shared.admission.lock().expect("admission lock");
            loop {
                if let Some(id) = admission.pop() {
                    shared.pending_gauge.set(admission.pending as i64);
                    break (Some(id), admission.closed);
                }
                if admission.closed {
                    break (None, true);
                }
                admission = shared.admitted.wait(admission).expect("admission lock");
            }
        };
        let Some(id) = next else { return };
        let state = shared.campaigns.lock().expect("campaigns lock").get(&id).cloned();
        let Some(state) = state else { continue };
        if draining {
            // Shutdown arrived before this campaign started: cancel it,
            // leaving its empty journal resumable.
            let mut progress = state.progress.lock().expect("progress lock");
            progress.error =
                Some("cancelled by shutdown before starting (journal is resumable)".to_string());
            progress.done = true;
            state.progressed.notify_all();
            continue;
        }
        run_campaign(shared, &state);
    }
}

/// Executes one campaign over the process-lifetime cache, journaling to
/// disk and streaming rows to waiting clients.
fn run_campaign(shared: &Shared, state: &Arc<CampaignState>) {
    let engine = CampaignEngine::new()
        .threads(shared.config.threads)
        .queue_depth(shared.config.queue_depth)
        .keep_going(true)
        .obs(shared.obs.clone())
        .shared_cache(Arc::clone(&shared.cache));
    let result = (|| -> Result<CampaignSummary, BatchError> {
        // The journal file exists since submission; append keeps the
        // create-then-run handoff crash-safe.
        let mut journal = JsonlSink::append(&state.journal)?.with_fingerprint(&state.fingerprint);
        let mut stream = StreamSink { state: Arc::clone(state) };
        let mut sinks: [&mut dyn ReportSink; 2] = [&mut journal, &mut stream];
        Ok(engine.run(&state.campaign, &mut sinks)?.summary)
    })();
    let mut progress = state.progress.lock().expect("progress lock");
    match result {
        Ok(summary) => {
            progress.summary = Some(summary);
            shared.completed.inc();
        }
        Err(e) => progress.error = Some(e.to_string()),
    }
    progress.done = true;
    state.progressed.notify_all();
}

/// The in-memory half of the journal: pushes each fingerprint-stamped
/// row into the campaign state and wakes streaming clients.
struct StreamSink {
    state: Arc<CampaignState>,
}

impl ReportSink for StreamSink {
    fn accept(&mut self, record: &JobRecord) -> Result<(), BatchError> {
        let mut line = record_to_json(record);
        line.truncate(line.len() - 1);
        line.push_str(&format!(", \"fp\": \"{}\"}}", self.state.fingerprint));
        let mut progress = self.state.progress.lock().expect("progress lock");
        progress.rows.push(line);
        self.state.progressed.notify_all();
        Ok(())
    }
}

/// A parsed HTTP/1.1 request: line, lowercased header names, body.
struct Request {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    body: String,
}

impl Request {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

fn read_request(stream: &TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line missing path")?.to_string();
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| e.to_string())?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let length: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map_or(Ok(0), |(_, v)| v.parse().map_err(|_| format!("bad content-length `{v}`")))?;
    if length > MAX_BODY_BYTES {
        return Err(format!("request body of {length} bytes exceeds {MAX_BODY_BYTES}"));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    let body = String::from_utf8(body).map_err(|_| "request body is not UTF-8".to_string())?;
    Ok(Request { method, path, headers, body })
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn respond_json(stream: &mut TcpStream, status: &str, body: &str) {
    respond(stream, status, "application/json", body);
}

fn error_body(message: &str) -> String {
    format!("{{\"error\": \"{}\"}}", escape(message))
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let request = match read_request(&stream) {
        Ok(request) => request,
        Err(e) => {
            respond_json(&mut stream, "400 Bad Request", &error_body(&e));
            return;
        }
    };
    shared.requests.inc();
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        ("GET", "/metrics") => serve_metrics(&mut stream, shared),
        ("POST", "/campaigns") => submit_campaign(&mut stream, shared, &request),
        ("POST", "/shutdown") => initiate_shutdown(&mut stream, shared),
        ("GET", path) => match campaign_route(path) {
            Some((id, "results")) => stream_results(&mut stream, shared, id),
            Some((id, "summary")) => serve_summary(&mut stream, shared, id),
            _ => respond_json(&mut stream, "404 Not Found", &error_body("no such route")),
        },
        _ => respond_json(&mut stream, "404 Not Found", &error_body("no such route")),
    }
}

/// Parses `/campaigns/<id>/<leaf>` into `(id, leaf)`.
fn campaign_route(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/campaigns/")?;
    let (id, leaf) = rest.split_once('/')?;
    Some((id.parse().ok()?, leaf))
}

fn serve_metrics(stream: &mut TcpStream, shared: &Shared) {
    let rendered = export::render_json(&shared.registry.snapshot());
    // Self-validation: the endpoint never serves bytes the strict
    // validator would reject (the same discipline as `--metrics`).
    match export::validate_metrics_json(&rendered) {
        Ok(_) => respond_json(stream, "200 OK", &rendered),
        Err(e) => respond_json(
            stream,
            "500 Internal Server Error",
            &error_body(&format!("internal: emitted bad metrics: {e}")),
        ),
    }
}

fn submit_campaign(stream: &mut TcpStream, shared: &Arc<Shared>, request: &Request) {
    let campaign = match campaign_from_spec(&request.body) {
        Ok(campaign) => campaign,
        Err(e) => {
            respond_json(stream, "400 Bad Request", &error_body(&e.to_string()));
            return;
        }
    };
    let fingerprint = campaign.fingerprint();
    // Fairness key: the client's self-declared identity, or its peer IP.
    let client = request
        .header("x-client")
        .map(str::to_string)
        .or_else(|| stream.peer_addr().ok().map(|a| a.ip().to_string()))
        .unwrap_or_else(|| "anonymous".to_string());

    let mut admission = shared.admission.lock().expect("admission lock");
    if admission.closed {
        respond_json(stream, "503 Service Unavailable", &error_body("shutting down"));
        return;
    }
    if admission.pending >= shared.config.max_pending {
        shared.rejected.inc();
        respond_json(
            stream,
            "429 Too Many Requests",
            &error_body(&format!(
                "pending-campaign queue is full ({} campaigns); retry later",
                admission.pending
            )),
        );
        return;
    }
    let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    let journal = shared.config.journal_dir.join(format!("campaign-{id}.jsonl"));
    // The journal exists from the moment the submission is acknowledged:
    // a campaign cancelled before its first job still leaves a valid
    // (empty) journal behind, and an empty journal resumes as a fresh
    // run.
    if let Err(e) = std::fs::File::create(&journal) {
        respond_json(
            stream,
            "500 Internal Server Error",
            &error_body(&format!("creating journal `{}`: {e}", journal.display())),
        );
        return;
    }
    let state = Arc::new(CampaignState {
        fingerprint: fingerprint.clone(),
        campaign,
        journal: journal.clone(),
        progress: Mutex::new(Progress::default()),
        progressed: Condvar::new(),
    });
    shared.campaigns.lock().expect("campaigns lock").insert(id, state);
    admission.push(&client, id);
    shared.pending_gauge.set(admission.pending as i64);
    shared.accepted.inc();
    shared.admitted.notify_one();
    drop(admission);
    respond_json(
        stream,
        "200 OK",
        &format!(
            "{{\"id\": {id}, \"fingerprint\": \"{fingerprint}\", \"journal\": \"{}\"}}",
            escape(&journal.display().to_string())
        ),
    );
}

fn initiate_shutdown(stream: &mut TcpStream, shared: &Shared) {
    respond_json(stream, "200 OK", "{\"draining\": true}");
    shared.shutdown.store(true, Ordering::SeqCst);
    {
        let mut admission = shared.admission.lock().expect("admission lock");
        admission.closed = true;
        shared.admitted.notify_all();
    }
    // Wake the blocked accept loop so it observes the shutdown flag.
    if let Ok(local) = stream.local_addr() {
        let _ = TcpStream::connect(local);
    }
}

fn lookup(shared: &Shared, id: u64) -> Option<Arc<CampaignState>> {
    shared.campaigns.lock().expect("campaigns lock").get(&id).cloned()
}

/// Streams a campaign's JSONL rows with chunked transfer-encoding as
/// jobs complete; the stream ends when the campaign does.
fn stream_results(stream: &mut TcpStream, shared: &Shared, id: u64) {
    let Some(state) = lookup(shared, id) else {
        respond_json(stream, "404 Not Found", &error_body(&format!("no campaign {id}")));
        return;
    };
    if write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/jsonl\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )
    .is_err()
    {
        return;
    }
    let mut sent = 0usize;
    loop {
        let (batch, finished) = {
            let mut progress = state.progress.lock().expect("progress lock");
            while progress.rows.len() == sent && !progress.done {
                progress = state.progressed.wait(progress).expect("progress lock");
            }
            (progress.rows[sent..].to_vec(), progress.done)
        };
        for row in &batch {
            if write!(stream, "{:x}\r\n{row}\n\r\n", row.len() + 1).is_err() {
                return; // client hung up; the journal still has everything
            }
        }
        let _ = stream.flush();
        sent += batch.len();
        if finished {
            break;
        }
    }
    let _ = stream.write_all(b"0\r\n\r\n");
    let _ = stream.flush();
}

/// Blocks until the campaign finishes, then serves its roll-up.
fn serve_summary(stream: &mut TcpStream, shared: &Shared, id: u64) {
    let Some(state) = lookup(shared, id) else {
        respond_json(stream, "404 Not Found", &error_body(&format!("no campaign {id}")));
        return;
    };
    let progress: MutexGuard<'_, Progress> = {
        let mut progress = state.progress.lock().expect("progress lock");
        while !progress.done {
            progress = state.progressed.wait(progress).expect("progress lock");
        }
        progress
    };
    match (&progress.summary, &progress.error) {
        (Some(summary), _) => respond_json(
            stream,
            "200 OK",
            &format!(
                "{{\"id\": {id}, \"fingerprint\": \"{}\", \"digest\": \"{:016x}\", \
                 \"jobs_total\": {}, \"jobs_ok\": {}, \"jobs_failed\": {}, \"jobs_skipped\": {}, \
                 \"journal\": \"{}\"}}",
                state.fingerprint,
                summary.digest(),
                summary.jobs_total,
                summary.jobs_ok,
                summary.jobs_failed,
                summary.jobs_skipped,
                escape(&state.journal.display().to_string())
            ),
        ),
        (None, Some(error)) => {
            respond_json(stream, "500 Internal Server Error", &error_body(error));
        }
        (None, None) => respond_json(
            stream,
            "500 Internal Server Error",
            &error_body("campaign finished without a summary"),
        ),
    }
}
