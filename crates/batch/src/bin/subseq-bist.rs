//! `subseq-bist` — the batch campaign CLI.
//!
//! The one front end over the whole pipeline: expand a campaign
//! (circuits × backends × schemes × seeds), execute it concurrently with
//! shared artifact caches, print the roll-up and optionally stream
//! schema-validated JSONL.
//!
//! ```text
//! subseq-bist run [--smoke] [--circuits s27,a298 | --upto N | --quick | --full]
//!                 [--backends packed,scalar,sharded[:T[:W]]] [--seeds 1999,2000]
//!                 [--ns 2,4,8,16] [--no-postprocess] [--no-verify]
//!                 [--optimize[=PASSES]]
//!                 [--threads N] [--queue N] [--keep-going] [--jsonl PATH]
//!                 [--resume PATH] [--deadline MS] [--retries N]
//!                 [--cache-budget BYTES] [--chaos[=SEED]]
//!                 [--metrics PATH] [--trace PATH] [--metrics-stdout]
//! subseq-bist list-circuits
//! subseq-bist lint FILE.bench... | --suite [--jsonl PATH] [--deny-warnings]
//! subseq-bist check-equiv A B
//! subseq-bist validate [--lint | --metrics | --trace | --resume] FILE
//! ```
//!
//! Argument parsing is hand-rolled (no external dependencies), in the
//! same convention as the table binaries in `bist-bench`.

use std::sync::Arc;
use std::time::Duration;

use bist_batch::faultpoint::{FaultPlan, FaultPoint, FaultSite};
use bist_batch::{
    parse_backend, BatchError, CachePolicy, Campaign, CampaignEngine, CampaignServer, JsonlSink,
    ReportSink, ResumeLog, RetryPolicy, ServeConfig,
};
use subseq_bist::netlist::{benchmarks, parser, Circuit};
use subseq_bist::obs::export;
use subseq_bist::tgen::TgenConfig;
use subseq_bist::verify::{check_equiv, lint_circuit, lint_source, structural_hash, Severity};
use subseq_bist::{Backend, CompileOptions, Obs, Registry};

const USAGE: &str = "\
subseq-bist — batch campaign front end for the subsequence-BIST pipeline

USAGE:
    subseq-bist run [OPTIONS]      execute a campaign and print the roll-up
    subseq-bist serve [OPTIONS]    long-lived campaign service over HTTP
    subseq-bist list-circuits      list the built-in benchmark suite
    subseq-bist lint TARGETS       statically lint netlists (see below)
    subseq-bist check-equiv A B    structural equivalence of two netlists
    subseq-bist validate FILE      schema-check a campaign JSONL file
             [--lint]              ...or a lint-diagnostic JSONL file
             [--metrics]           ...or a metrics JSON export
             [--trace]             ...or a trace JSONL export
             [--resume]            ...or a crash journal (tolerates one
                                   torn trailing line, as --resume does)
    subseq-bist help               show this text

LINT:
    subseq-bist lint FILE.bench... lint `.bench` files
    subseq-bist lint --suite       lint every built-in suite circuit
    --jsonl PATH                   also write one diagnostic row per line
    --deny-warnings                exit nonzero on warnings, not just errors

CHECK-EQUIV:
    A and B are `.bench` file paths or built-in suite circuit names.
    Exit 0 iff the circuits are structurally equivalent (names and gate
    order may differ; PI/PO/DFF positions, opcodes and pin order may not).

RUN OPTIONS:
    --circuits A,B,..   built-in suite circuits to run (default: --upto 3000)
    --upto N            every suite circuit with at most N gates
    --quick             alias for --upto 300
    --full              the whole suite including the largest analog
    --backends LIST     comma-separated: packed, scalar, sharded[:T[:W]]
                        (T threads, 0 = auto; W lanes 64/256/512; default packed)
    --seeds LIST        comma-separated u64 seeds (default 1999)
    --ns LIST           repetition counts to sweep (default 2,4,8,16)
    --no-postprocess    skip the paper's §3.2 static compaction of S
    --no-verify         skip post-run coverage verification
    --optimize[=PASSES] fault-simulate on staged-compiler-optimized tapes
                        (results stay bit-identical; reports gates removed).
                        PASSES is a subset of \"xfds\": x constant-X fold,
                        f value forwarding, d duplicate-gate dedup, s dead
                        sweep (default: all)
    --t0-cap N          cap |T0| (default 1024, the paper's longest)
    --t0-budget N       T0 static-compaction trial budget (default 300)
    --threads N         worker threads (default 0 = one per core)
    --queue N           bounded job-queue depth (default 32)
    --keep-going        record job failures instead of cancelling
    --deadline MS       per-job deadline in milliseconds (cooperatively
                        cancels the sweep; the job fails as timed out)
    --retries N         attempts per job (default 1 = no retries; only
                        transient failures are retried, with backoff)
    --cache-budget B    bound the shared artifact cache to ~B bytes
                        (least-recently-used artifacts are evicted and
                        recomputed bit-identically on the next miss)
    --chaos[=SEED]      deterministic fault injection: seeded transient
                        errors, delays and poisoned cache computes that
                        heal on retry (defaults --retries to 3); results
                        stay identical to a fault-free run
    --jsonl PATH        stream one schema-validated JSON row per job
                        (each row is flushed immediately and stamped with
                        the campaign fingerprint — a crash-safe journal)
    --resume PATH       resume a killed campaign from its journal: replay
                        completed jobs, repair a torn trailing line, run
                        only the missing jobs and append their rows
    --metrics PATH      write counters/gauges/histograms as JSON after the run
    --trace PATH        record span traces and write them as JSONL
    --metrics-stdout    print the metrics table to stdout after the run
    --smoke             tiny CI configuration: small circuits, short T0,
                        n in {1,2}, packed + sharded backends

SERVE OPTIONS:
    --addr HOST:PORT    bind address (default 127.0.0.1:0 = free port)
    --threads N         worker threads per campaign (default 0 = auto)
    --queue N           engine job-queue depth (default 32)
    --max-pending N     queued campaigns before 429 (default 16)
    --cache-budget B    byte budget of the process-lifetime artifact
                        cache shared across campaigns (default unbounded)
    --journal-dir DIR   per-campaign JSONL journal directory
    Endpoints: POST /campaigns, GET /campaigns/<id>/results (streamed),
    GET /campaigns/<id>/summary, GET /metrics, GET /healthz,
    POST /shutdown (graceful drain; see README \"Campaign service\")
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("list-circuits") => list_circuits(),
        Some("lint") => lint(&args[1..]),
        Some("check-equiv") => check_equiv_cmd(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => {
            Err(BatchError::Config(format!("unknown command `{other}` (try `subseq-bist help`)")))
        }
    };
    if let Err(e) = code {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Splits a comma-separated flag value.
fn split_list(value: &str) -> Vec<String> {
    value.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect()
}

fn parse_flag_value<'a>(
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a str, BatchError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| BatchError::Config(format!("`{flag}` needs a value")))
}

fn parse_usize(flag: &str, value: &str) -> Result<usize, BatchError> {
    value
        .parse()
        .map_err(|_| BatchError::Config(format!("`{flag}` needs an integer, got `{value}`")))
}

fn run(args: &[String]) -> Result<(), BatchError> {
    let mut circuits: Option<Vec<String>> = None;
    let mut upto: Option<usize> = None;
    let mut backends: Option<Vec<Backend>> = None;
    let mut seeds: Vec<u64> = vec![1999];
    let mut ns: Option<Vec<usize>> = None;
    let mut postprocess = true;
    let mut verify = true;
    let mut optimize = CompileOptions::none();
    let mut t0_cap: Option<usize> = None;
    let mut t0_budget: Option<usize> = None;
    let mut threads = 0;
    let mut queue = 32;
    let mut keep_going = false;
    let mut deadline: Option<u64> = None;
    let mut retries: Option<usize> = None;
    let mut cache_budget: Option<usize> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut jsonl: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut metrics_stdout = false;
    let mut smoke = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--circuits" => circuits = Some(split_list(parse_flag_value(arg, &mut it)?)),
            "--upto" => upto = Some(parse_usize(arg, parse_flag_value(arg, &mut it)?)?),
            "--quick" => upto = Some(300),
            "--full" => upto = Some(usize::MAX),
            "--backends" => {
                let tokens = split_list(parse_flag_value(arg, &mut it)?);
                backends = Some(tokens.iter().map(|t| parse_backend(t)).collect::<Result<_, _>>()?);
            }
            "--seeds" => {
                let tokens = split_list(parse_flag_value(arg, &mut it)?);
                seeds = tokens
                    .iter()
                    .map(|t| {
                        t.parse()
                            .map_err(|_| BatchError::Config(format!("bad seed `{t}` in --seeds")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--ns" => {
                let tokens = split_list(parse_flag_value(arg, &mut it)?);
                ns = Some(
                    tokens
                        .iter()
                        .map(|t| {
                            t.parse()
                                .map_err(|_| BatchError::Config(format!("bad n `{t}` in --ns")))
                        })
                        .collect::<Result<_, _>>()?,
                );
            }
            "--no-postprocess" => postprocess = false,
            "--no-verify" => verify = false,
            "--optimize" => optimize = CompileOptions::all(),
            flag if flag.starts_with("--optimize=") => {
                let spec = &flag["--optimize=".len()..];
                optimize = CompileOptions::parse(spec).ok_or_else(|| {
                    BatchError::Config(format!(
                        "bad --optimize passes `{spec}` (expected a subset of `xfds` or `none`)"
                    ))
                })?;
            }
            "--t0-cap" => t0_cap = Some(parse_usize(arg, parse_flag_value(arg, &mut it)?)?),
            "--t0-budget" => t0_budget = Some(parse_usize(arg, parse_flag_value(arg, &mut it)?)?),
            "--threads" => threads = parse_usize(arg, parse_flag_value(arg, &mut it)?)?,
            "--queue" => queue = parse_usize(arg, parse_flag_value(arg, &mut it)?)?,
            "--keep-going" => keep_going = true,
            "--deadline" => {
                let value = parse_flag_value(arg, &mut it)?;
                deadline = Some(value.parse().map_err(|_| {
                    BatchError::Config(format!("`--deadline` needs milliseconds, got `{value}`"))
                })?);
            }
            "--retries" => retries = Some(parse_usize(arg, parse_flag_value(arg, &mut it)?)?),
            "--cache-budget" => {
                cache_budget = Some(parse_usize(arg, parse_flag_value(arg, &mut it)?)?);
            }
            "--chaos" => chaos_seed = Some(7),
            flag if flag.starts_with("--chaos=") => {
                let spec = &flag["--chaos=".len()..];
                chaos_seed = Some(spec.parse().map_err(|_| {
                    BatchError::Config(format!("`--chaos` needs a u64 seed, got `{spec}`"))
                })?);
            }
            "--jsonl" => jsonl = Some(parse_flag_value(arg, &mut it)?.to_string()),
            "--resume" => resume = Some(parse_flag_value(arg, &mut it)?.to_string()),
            "--metrics" => metrics = Some(parse_flag_value(arg, &mut it)?.to_string()),
            "--trace" => trace = Some(parse_flag_value(arg, &mut it)?.to_string()),
            "--metrics-stdout" => metrics_stdout = true,
            "--smoke" => smoke = true,
            other => {
                return Err(BatchError::Config(format!(
                    "unknown flag `{other}` (try `subseq-bist help`)"
                )))
            }
        }
    }

    // Smoke mode: a tiny, CI-sized campaign; explicit flags always win.
    if smoke {
        upto.get_or_insert(300);
        if ns.is_none() {
            ns = Some(vec![1, 2]);
        }
        if backends.is_none() {
            backends = Some(vec![Backend::Packed, Backend::Sharded { threads: 0, width: 256 }]);
        }
        println!("(smoke mode: tiny campaign, timings are not meaningful)");
    }
    // Defaults: the paper's 1024-vector cap and 300-trial budget, shrunk
    // in smoke mode unless given explicitly.
    let t0_cap = t0_cap.unwrap_or(if smoke { 48 } else { 1024 });
    let t0_budget = t0_budget.unwrap_or(if smoke { 20 } else { 300 });

    let mut campaign = Campaign::new()
        .seeds(seeds)
        .verify(verify)
        .optimize(optimize)
        .tgen(TgenConfig::new().max_length(t0_cap).compaction_budget(t0_budget));
    campaign = match circuits {
        Some(names) => campaign.suite_circuits(names),
        None => campaign.suite_up_to(upto.unwrap_or(3000)),
    };
    if let Some(backends) = backends {
        campaign = campaign.backends(backends);
    }
    if let Some(ns) = ns {
        campaign = campaign.ns(ns);
    }
    if !postprocess {
        let schemes: Vec<_> =
            campaign.scheme_specs().iter().cloned().map(|s| s.postprocess(false)).collect();
        campaign = campaign.schemes(schemes);
    }

    if jsonl.is_some() && resume.is_some() {
        return Err(BatchError::Config(
            "`--resume` already names the journal; drop `--jsonl`".to_string(),
        ));
    }

    let mut engine =
        CampaignEngine::new().threads(threads).queue_depth(queue).keep_going(keep_going);
    if let Some(ms) = deadline {
        engine = engine.deadline(Duration::from_millis(ms));
    }
    if let Some(attempts) = retries {
        engine = engine.retry(RetryPolicy {
            max_attempts: attempts.max(1),
            backoff: Duration::from_millis(25),
        });
    }
    if let Some(bytes) = cache_budget {
        engine = engine.cache_policy(CachePolicy::bounded(bytes));
    }
    // The chaos plan injects only *healing* faults — transients, delays
    // and poisoned cache computes that succeed on retry — so a chaos run
    // (or a chaos run killed and resumed) converges to the digest of the
    // fault-free campaign. That identity is the whole point.
    let chaos_plan = chaos_seed.map(|seed| {
        Arc::new(
            FaultPlan::new(seed)
                .point(FaultPoint::new(FaultSite::JobTransient, "").rate_per_mille(400))
                .point(
                    FaultPoint::new(FaultSite::JobDelay, "")
                        .rate_per_mille(250)
                        .delay(Duration::from_millis(2)),
                )
                .point(FaultPoint::new(FaultSite::CachePoison, "t0:").rate_per_mille(400)),
        )
    });
    if let Some(plan) = &chaos_plan {
        engine = engine.chaos(Arc::clone(plan));
        if retries.is_none() {
            engine =
                engine.retry(RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(10) });
        }
        println!(
            "(chaos mode: deterministic fault injection, seed {})",
            chaos_seed.unwrap_or_default()
        );
    }

    // Telemetry is opt-in: without one of the flags below the engine
    // keeps its no-op sink and records nothing.
    let registry = if metrics.is_some() || trace.is_some() || metrics_stdout {
        let registry = Arc::new(Registry::new());
        if trace.is_some() {
            registry.enable_tracing();
        }
        engine = engine.obs(Obs::with_registry(Arc::clone(&registry)));
        Some(registry)
    } else {
        None
    };

    let outcome = if let Some(path) = &resume {
        let fingerprint = campaign.fingerprint();
        let log = ResumeLog::load(path, &fingerprint)?;
        if log.truncated() {
            println!("repaired a torn trailing row in {path}");
        }
        println!("resuming from {path}: replaying {} completed job(s)", log.records().len());
        let mut sink = JsonlSink::append(path)?.with_fingerprint(&fingerprint);
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        let outcome = engine.run_resumed(&campaign, &mut sinks, log.records())?;
        println!("journal {} now holds {} JSONL rows", sink.path().display(), sink.rows());
        outcome
    } else if let Some(path) = &jsonl {
        let mut sink = JsonlSink::create(path)?.with_fingerprint(campaign.fingerprint());
        let mut sinks: [&mut dyn ReportSink; 1] = [&mut sink];
        let outcome = engine.run(&campaign, &mut sinks)?;
        println!("wrote {} JSONL rows to {}", sink.rows(), sink.path().display());
        outcome
    } else {
        engine.run(&campaign, &mut [])?
    };
    print!("{}", outcome.summary);
    println!("  summary digest: {:016x}", outcome.summary.digest());
    println!("  cache: {}", outcome.cache);
    println!("  cache {}", outcome.residency);
    if let Some(plan) = &chaos_plan {
        println!("  chaos: {} fault(s) injected", plan.injected());
    }

    if let Some(registry) = registry {
        let snapshot = registry.snapshot();
        if let Some(path) = &metrics {
            let rendered = export::render_json(&snapshot);
            let rows = export::validate_metrics_json(&rendered)
                .map_err(|e| BatchError::Config(format!("internal: emitted bad metrics: {e}")))?;
            std::fs::write(path, &rendered).map_err(BatchError::Io)?;
            println!("wrote {rows} metrics to {path}");
        }
        if let Some(path) = &trace {
            let rendered = export::render_trace_jsonl(&registry.trace_events());
            let rows = export::validate_trace_jsonl(&rendered)
                .map_err(|e| BatchError::Config(format!("internal: emitted bad trace: {e}")))?;
            std::fs::write(path, &rendered).map_err(BatchError::Io)?;
            println!("wrote {rows} trace events to {path}");
        }
        if metrics_stdout {
            print!("{}", export::render_text(&snapshot));
        }
    }
    Ok(())
}

/// The long-lived campaign service: binds, prints the address, serves
/// until a `POST /shutdown` drains the queue.
fn serve(args: &[String]) -> Result<(), BatchError> {
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse_flag_value(arg, &mut it)?.to_string(),
            "--threads" => config.threads = parse_usize(arg, parse_flag_value(arg, &mut it)?)?,
            "--queue" => config.queue_depth = parse_usize(arg, parse_flag_value(arg, &mut it)?)?,
            "--max-pending" => {
                config.max_pending = parse_usize(arg, parse_flag_value(arg, &mut it)?)?;
            }
            "--cache-budget" => {
                let bytes = parse_usize(arg, parse_flag_value(arg, &mut it)?)?;
                config.cache_policy = CachePolicy::bounded(bytes);
            }
            "--journal-dir" => {
                config.journal_dir = parse_flag_value(arg, &mut it)?.into();
            }
            other => {
                return Err(BatchError::Config(format!(
                    "unknown `serve` flag `{other}` (try `subseq-bist help`)"
                )))
            }
        }
    }
    let journal_dir = config.journal_dir.clone();
    let server = CampaignServer::bind(config)?;
    println!("subseq-bist serve: listening on http://{}", server.local_addr());
    println!("journals in {}", journal_dir.display());
    server.run()
}

fn list_circuits() -> Result<(), BatchError> {
    println!("{:<10} {:<10} {:>7}", "name", "analog of", "gates");
    for entry in benchmarks::suite() {
        println!("{:<10} {:<10} {:>7}", entry.name, entry.analog_of, entry.gates);
    }
    Ok(())
}

fn validate(args: &[String]) -> Result<(), BatchError> {
    let mut schema: Option<&str> = None;
    let mut path: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            flag @ ("--lint" | "--metrics" | "--trace" | "--resume") => {
                if let Some(prev) = schema {
                    return Err(BatchError::Config(format!(
                        "`validate` takes one schema flag, got `{prev}` and `{flag}`"
                    )));
                }
                schema = Some(flag);
            }
            other if path.is_none() => path = Some(other),
            other => {
                return Err(BatchError::Config(format!("unexpected `validate` argument `{other}`")))
            }
        }
    }
    let path =
        path.ok_or_else(|| BatchError::Config("`validate` needs a file path".to_string()))?;
    let text = read_file(path)?;
    if schema == Some("--resume") {
        let (rows, truncated) = bist_batch::jsonl::validate_jsonl_lenient(&text)
            .map_err(|e| BatchError::Config(format!("{path}: {e}")))?;
        let note = if truncated { " (one torn trailing line would be dropped)" } else { "" };
        println!("{path}: {rows} rows{note}, schema ok");
        return Ok(());
    }
    let (rows, what) = match schema {
        Some("--lint") => (bist_batch::jsonl::validate_lint_jsonl(&text), "diagnostic rows"),
        Some("--metrics") => (export::validate_metrics_json(&text), "metrics"),
        Some("--trace") => (export::validate_trace_jsonl(&text), "trace events"),
        _ => (bist_batch::jsonl::validate_jsonl(&text), "rows"),
    };
    let rows = rows.map_err(|e| BatchError::Config(format!("{path}: {e}")))?;
    println!("{path}: {rows} {what}, schema ok");
    Ok(())
}

fn read_file(path: &str) -> Result<String, BatchError> {
    std::fs::read_to_string(path).map_err(|e| {
        BatchError::Io(std::io::Error::new(e.kind(), format!("reading `{path}`: {e}")))
    })
}

/// Lint targets: `.bench` files, or the whole built-in suite.
fn lint(args: &[String]) -> Result<(), BatchError> {
    let mut files: Vec<String> = Vec::new();
    let mut suite = false;
    let mut jsonl: Option<String> = None;
    let mut deny_warnings = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--suite" => suite = true,
            "--jsonl" => jsonl = Some(parse_flag_value(arg, &mut it)?.to_string()),
            "--deny-warnings" => deny_warnings = true,
            flag if flag.starts_with("--") => {
                return Err(BatchError::Config(format!("unknown `lint` flag `{flag}`")))
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() && !suite {
        return Err(BatchError::Config(
            "`lint` needs `.bench` files or `--suite` (try `subseq-bist help`)".to_string(),
        ));
    }

    // (name, diagnostics) per target. Files are linted at the source
    // level (so even netlists the strict parser refuses get diagnosed);
    // suite circuits are built in memory and linted at the graph level.
    let mut reports: Vec<(String, Vec<subseq_bist::verify::Diagnostic>)> = Vec::new();
    for path in &files {
        let text = read_file(path)?;
        let diags = lint_source(&text)
            .map_err(|e| BatchError::Config(format!("{path}: unparseable: {e}")))?;
        reports.push((path.clone(), diags));
    }
    if suite {
        for entry in benchmarks::suite() {
            let circuit = entry
                .build()
                .map_err(|e| BatchError::Config(format!("building `{}`: {e}", entry.name)))?;
            reports.push((entry.name.to_string(), lint_circuit(&circuit)));
        }
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut rows = String::new();
    for (name, diags) in &reports {
        for d in diags {
            match d.severity() {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            println!("{name}: {d} ({})", d.nets.join(", "));
            rows.push_str(&bist_batch::jsonl::diagnostic_to_json(name, d));
            rows.push('\n');
        }
    }
    if let Some(path) = &jsonl {
        bist_batch::jsonl::validate_lint_jsonl(&rows)
            .map_err(|e| BatchError::Config(format!("internal: emitted bad JSONL: {e}")))?;
        std::fs::write(path, &rows).map_err(BatchError::Io)?;
        println!(
            "wrote {} diagnostic rows to {path}",
            rows.lines().filter(|l| !l.trim().is_empty()).count()
        );
    }
    println!("linted {} netlist(s): {errors} error(s), {warnings} warning(s)", reports.len());
    if errors > 0 || (deny_warnings && warnings > 0) {
        return Err(BatchError::Config("lint failed".to_string()));
    }
    Ok(())
}

/// Resolves a `check-equiv` operand: a built-in suite circuit name, or a
/// `.bench` file path.
fn load_circuit(operand: &str) -> Result<Circuit, BatchError> {
    if let Some(entry) = benchmarks::suite().into_iter().find(|e| e.name == operand) {
        return entry.build().map_err(|e| BatchError::Config(format!("building `{operand}`: {e}")));
    }
    let text = read_file(operand)?;
    let name = operand.rsplit('/').next().unwrap_or(operand).trim_end_matches(".bench");
    parser::parse_bench(name, &text)
        .map_err(|e| BatchError::Config(format!("parsing `{operand}`: {e}")))
}

fn check_equiv_cmd(args: &[String]) -> Result<(), BatchError> {
    let [a, b] = args else {
        return Err(BatchError::Config(
            "`check-equiv` needs exactly two operands (suite names or .bench paths)".to_string(),
        ));
    };
    let ca = load_circuit(a)?;
    let cb = load_circuit(b)?;
    match check_equiv(&ca, &cb) {
        Ok(()) => {
            println!(
                "equivalent: `{a}` and `{b}` are structurally identical (hash {:016x})",
                structural_hash(&ca)
            );
            Ok(())
        }
        Err(why) => Err(BatchError::Config(format!("`{a}` vs `{b}`: {why}"))),
    }
}
