//! The shared, thread-safe artifact cache behind a campaign run.
//!
//! Jobs that touch the same circuit share four expensive artifacts via
//! [`Arc`]: the parsed [`Circuit`], its compiled [`GateTape`] (the flat
//! instruction form every simulation engine executes), its collapsed
//! fault universe, and — per (seed, `T0` config) — the generated `T0`
//! with its coverage. Each
//! artifact is computed **exactly once** no matter how many workers race
//! for it: the per-key slot is a [`OnceLock`], so the first worker runs
//! the computation while later workers block on the same slot and then
//! share the result. Hit/miss counters make the reuse observable (and
//! testable).
//!
//! Two refinements keep long campaigns honest:
//!
//! * **Failure taxonomy.** A failed computation is cached like a value,
//!   but *transient* failures (interrupted/timed-out I/O, injected
//!   chaos) release their slot immediately so a retry recomputes instead
//!   of being fed the stale error forever. *Permanent* failures (a
//!   circuit that does not parse, a file that does not exist) stay
//!   cached and fail every sharer fast.
//! * **Bounded residency.** A [`CachePolicy`] with `max_bytes` turns the
//!   cache into a byte-budget LRU: whenever the approximate resident
//!   bytes exceed the budget, the globally least-recently-used completed
//!   artifact on an unpinned shelf is evicted (counted in
//!   `cache.<shelf>.evictions`). Outstanding `Arc`s keep evicted values
//!   alive for their holders; a later request recomputes the artifact
//!   bit-identically because every computation is deterministic.

use crate::campaign::CircuitSpec;
use crate::faultpoint::FaultPlan;
use crate::BatchError;
use bist_obs::{CounterHandle, GaugeHandle, Obs};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use subseq_bist::netlist::{compile_staged_with_baseline, Circuit, GateTape};
use subseq_bist::sim::{collapse, fault_universe, Fault};
use subseq_bist::tgen::{generate_t0_with_artifacts, GeneratedTest, TgenConfig};
use subseq_bist::{BistError, CompileOptions, CompiledCircuit, SessionArtifacts};

/// A snapshot of the cache's hit/miss/eviction counters.
///
/// A "miss" is a computation actually performed; a "hit" is a request
/// served from (or while waiting on) an existing slot. For a campaign of
/// `J` jobs over `C` distinct circuits, a fully shared cache shows
/// `C` misses and `J - C` hits on the circuit and fault shelves.
/// Evictions only occur under a bounded [`CachePolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Parsed-circuit computations performed.
    pub circuit_misses: usize,
    /// Parsed-circuit requests served from the cache.
    pub circuit_hits: usize,
    /// Gate-tape compilations performed.
    pub tape_misses: usize,
    /// Gate-tape requests served from the cache.
    pub tape_hits: usize,
    /// Staged (optimizing) compiles performed.
    pub compiled_misses: usize,
    /// Staged-compile requests served from the cache.
    pub compiled_hits: usize,
    /// Fault-universe collapses performed.
    pub fault_misses: usize,
    /// Fault-universe requests served from the cache.
    pub fault_hits: usize,
    /// `T0` generations performed.
    pub t0_misses: usize,
    /// `T0` requests served from the cache.
    pub t0_hits: usize,
    /// Parsed circuits evicted under the byte budget.
    pub circuit_evictions: usize,
    /// Gate tapes evicted under the byte budget.
    pub tape_evictions: usize,
    /// Staged compiles evicted under the byte budget.
    pub compiled_evictions: usize,
    /// Fault universes evicted under the byte budget.
    pub fault_evictions: usize,
    /// Generated `T0`s evicted under the byte budget.
    pub t0_evictions: usize,
}

impl CacheStats {
    /// Total evictions across all shelves.
    #[must_use]
    pub fn total_evictions(&self) -> usize {
        self.circuit_evictions
            + self.tape_evictions
            + self.compiled_evictions
            + self.fault_evictions
            + self.t0_evictions
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuits {}+{} reused, tapes {}+{} reused, staged compiles {}+{} reused, universes \
             {}+{} reused, T0s {}+{} reused, {} evicted",
            self.circuit_misses,
            self.circuit_hits,
            self.tape_misses,
            self.tape_hits,
            self.compiled_misses,
            self.compiled_hits,
            self.fault_misses,
            self.fault_hits,
            self.t0_misses,
            self.t0_hits,
            self.total_evictions(),
        )
    }
}

/// One shelf of the cache, for naming in a [`CachePolicy`]'s pin set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShelfId {
    /// Parsed circuits.
    Circuit,
    /// Compiled gate tapes.
    Tape,
    /// Staged (optimizing) compiles.
    Compiled,
    /// Collapsed fault universes.
    Fault,
    /// Generated `T0`s with coverage.
    T0,
}

impl ShelfId {
    /// The shelf's telemetry name (`cache.<name>.*`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShelfId::Circuit => "circuit",
            ShelfId::Tape => "tape",
            ShelfId::Compiled => "compiled",
            ShelfId::Fault => "fault",
            ShelfId::T0 => "t0",
        }
    }

    fn bit(self) -> u8 {
        match self {
            ShelfId::Circuit => 1,
            ShelfId::Tape => 2,
            ShelfId::Compiled => 4,
            ShelfId::Fault => 8,
            ShelfId::T0 => 16,
        }
    }
}

/// A small set of [`ShelfId`]s (a `Copy` bitset, so [`CachePolicy`] and
/// everything holding one stays `Copy`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShelfSet(u8);

impl ShelfSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        ShelfSet(0)
    }

    /// This set plus `shelf`.
    #[must_use]
    pub fn with(self, shelf: ShelfId) -> Self {
        ShelfSet(self.0 | shelf.bit())
    }

    /// Whether `shelf` is in the set.
    #[must_use]
    pub fn contains(self, shelf: ShelfId) -> bool {
        self.0 & shelf.bit() != 0
    }
}

/// Residency policy of an [`ArtifactCache`]: an optional approximate
/// byte budget plus shelves exempt from eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachePolicy {
    /// Approximate resident-byte budget across all shelves (`None` =
    /// unbounded, the historical behaviour). Enforced by LRU eviction
    /// after each artifact bundle is assembled.
    pub max_bytes: Option<usize>,
    /// Shelves never evicted from, budget notwithstanding.
    pub pinned_shelves: ShelfSet,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy::unbounded()
    }
}

impl CachePolicy {
    /// No budget: the cache grows for the life of the campaign.
    #[must_use]
    pub fn unbounded() -> Self {
        CachePolicy { max_bytes: None, pinned_shelves: ShelfSet::empty() }
    }

    /// An approximate byte budget enforced by LRU eviction.
    #[must_use]
    pub fn bounded(max_bytes: usize) -> Self {
        CachePolicy { max_bytes: Some(max_bytes), pinned_shelves: ShelfSet::empty() }
    }

    /// Exempts `shelf` from eviction.
    #[must_use]
    pub fn pin(mut self, shelf: ShelfId) -> Self {
        self.pinned_shelves = self.pinned_shelves.with(shelf);
        self
    }
}

/// Residency of one cache shelf: how many artifacts it holds and a rough
/// byte estimate of what they pin in memory. Only successfully computed
/// artifacts count (cached failures occupy a slot but hold no data).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShelfResidency {
    /// Number of resident artifacts.
    pub entries: usize,
    /// Approximate bytes the resident artifacts pin (coarse per-artifact
    /// models — node/gate/vector counts times typical struct sizes).
    pub approx_bytes: usize,
}

/// Residency of every shelf — the cache's memory footprint at a glance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheResidency {
    /// Parsed circuits.
    pub circuits: ShelfResidency,
    /// Compiled gate tapes.
    pub tapes: ShelfResidency,
    /// Staged (optimizing) compiles.
    pub compiled: ShelfResidency,
    /// Collapsed fault universes.
    pub faults: ShelfResidency,
    /// Generated `T0`s with coverage.
    pub t0s: ShelfResidency,
}

impl CacheResidency {
    /// Total approximate resident bytes across all shelves.
    #[must_use]
    pub fn total_approx_bytes(&self) -> usize {
        self.circuits.approx_bytes
            + self.tapes.approx_bytes
            + self.compiled.approx_bytes
            + self.faults.approx_bytes
            + self.t0s.approx_bytes
    }
}

impl std::fmt::Display for CacheResidency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "resident: {} circuits, {} tapes, {} staged compiles, {} universes, {} T0s \
             (~{} KiB pinned)",
            self.circuits.entries,
            self.tapes.entries,
            self.compiled.entries,
            self.faults.entries,
            self.t0s.entries,
            self.total_approx_bytes().div_ceil(1024),
        )
    }
}

/// A cached computation failure: the message plus whether a retry could
/// plausibly succeed. Transient failures (interrupted/timed-out I/O,
/// injected chaos) release their slot so the next request recomputes;
/// permanent failures (parse errors, missing files) stay cached.
#[derive(Debug, Clone)]
struct CacheFailure {
    message: String,
    transient: bool,
}

impl CacheFailure {
    fn of(e: &BistError) -> Self {
        let transient = matches!(
            e,
            BistError::Io(io) if matches!(
                io.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            )
        );
        CacheFailure { message: e.to_string(), transient }
    }
}

/// One keyed entry: a compute-once cell plus LRU bookkeeping. `touched`
/// is a tick from the cache-wide clock (updated on every request);
/// `bytes` is the approximate size recorded when the value was computed.
struct SlotInner<V> {
    cell: OnceLock<Result<Arc<V>, CacheFailure>>,
    touched: AtomicU64,
    bytes: AtomicUsize,
}

impl<V> Default for SlotInner<V> {
    fn default() -> Self {
        SlotInner { cell: OnceLock::new(), touched: AtomicU64::new(0), bytes: AtomicUsize::new(0) }
    }
}

/// A compute-once slot shared by every requester of one key.
type Slot<V> = Arc<SlotInner<V>>;

/// Pre-resolved telemetry handles of one shelf: hit/miss/eviction
/// counters plus resident-entry and approx-resident-bytes gauges, named
/// `cache.<shelf>.{hit,miss,evictions,resident,resident_bytes}`. No-op
/// (a branch per event) unless the cache was built with an active sink.
struct ShelfObs {
    hit: CounterHandle,
    miss: CounterHandle,
    evictions: CounterHandle,
    resident: GaugeHandle,
    resident_bytes: GaugeHandle,
}

impl ShelfObs {
    fn new(obs: &Obs, shelf: &str) -> Self {
        ShelfObs {
            hit: obs.counter(&format!("cache.{shelf}.hit")),
            miss: obs.counter(&format!("cache.{shelf}.miss")),
            evictions: obs.counter(&format!("cache.{shelf}.evictions")),
            resident: obs.gauge(&format!("cache.{shelf}.resident")),
            resident_bytes: obs.gauge(&format!("cache.{shelf}.resident_bytes")),
        }
    }
}

/// One keyed shelf of the cache: a map of compute-once slots with LRU
/// bookkeeping against the shared cache clock.
struct Shelf<K, V> {
    slots: Mutex<HashMap<K, Slot<V>>>,
    clock: Arc<AtomicU64>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    resident: AtomicUsize,
    resident_bytes: AtomicUsize,
    obs: ShelfObs,
}

impl<K: std::hash::Hash + Eq + Clone, V> Shelf<K, V> {
    fn new(obs: &Obs, name: &str, clock: Arc<AtomicU64>) -> Self {
        Shelf {
            slots: Mutex::new(HashMap::new()),
            clock,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            resident: AtomicUsize::new(0),
            resident_bytes: AtomicUsize::new(0),
            obs: ShelfObs::new(obs, name),
        }
    }

    /// Returns the cached value for `key`, computing it (exactly once
    /// across all threads) on first request. `describe` names the
    /// artifact in errors; `approx_bytes` estimates what a newly computed
    /// artifact pins in memory (for the residency gauges and the LRU
    /// budget). A transient computation failure releases the slot so the
    /// next request recomputes.
    fn get_or_compute(
        &self,
        key: &K,
        describe: &str,
        compute: impl FnOnce() -> Result<V, BistError>,
        approx_bytes: impl FnOnce(&V) -> usize,
    ) -> Result<Arc<V>, BatchError> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            Arc::clone(slots.entry(key.clone()).or_default())
        };
        slot.touched.store(self.clock.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
        let mut computed = false;
        let outcome = slot.cell.get_or_init(|| {
            computed = true;
            compute().map(Arc::new).map_err(|e| CacheFailure::of(&e))
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.obs.miss.inc();
            match outcome {
                Ok(value) => {
                    let bytes = approx_bytes(value);
                    slot.bytes.store(bytes, Ordering::Relaxed);
                    self.resident.fetch_add(1, Ordering::Relaxed);
                    self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
                    self.obs.resident.add(1);
                    self.obs.resident_bytes.add(i64::try_from(bytes).unwrap_or(i64::MAX));
                }
                Err(failure) if failure.transient => {
                    // Release the slot: a retry should recompute, not be
                    // served this failure forever. Guard against a newer
                    // slot having replaced ours in the meantime.
                    let mut slots = self.slots.lock().expect("cache lock poisoned");
                    if slots.get(key).is_some_and(|s| Arc::ptr_eq(s, &slot)) {
                        slots.remove(key);
                    }
                }
                Err(_) => {}
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs.hit.inc();
        }
        match outcome {
            Ok(value) => Ok(Arc::clone(value)),
            Err(failure) => Err(BatchError::Artifact {
                artifact: describe.to_string(),
                message: failure.message.clone(),
                transient: failure.transient,
            }),
        }
    }

    /// The LRU tick of the oldest evictable (completed, successful)
    /// entry, if any.
    fn oldest_tick(&self) -> Option<u64> {
        let slots = self.slots.lock().expect("cache lock poisoned");
        slots
            .values()
            .filter(|s| matches!(s.cell.get(), Some(Ok(_))))
            .map(|s| s.touched.load(Ordering::Relaxed))
            .min()
    }

    /// Evicts the least-recently-used completed entry, returning its key
    /// and approximate bytes. In-flight and failed slots are never
    /// evicted (they hold no resident data).
    fn evict_oldest(&self) -> Option<(K, usize)> {
        let slot;
        let key;
        {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            key = slots
                .iter()
                .filter(|(_, s)| matches!(s.cell.get(), Some(Ok(_))))
                .min_by_key(|(_, s)| s.touched.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())?;
            slot = slots.remove(&key)?;
        }
        let bytes = slot.bytes.load(Ordering::Relaxed);
        self.resident.fetch_sub(1, Ordering::Relaxed);
        self.resident_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.obs.resident.sub(1);
        self.obs.resident_bytes.sub(i64::try_from(bytes).unwrap_or(i64::MAX));
        self.obs.evictions.inc();
        Some((key, bytes))
    }

    fn counters(&self) -> (usize, usize) {
        (self.misses.load(Ordering::Relaxed), self.hits.load(Ordering::Relaxed))
    }

    fn evicted(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    fn residency(&self) -> ShelfResidency {
        ShelfResidency {
            entries: self.resident.load(Ordering::Relaxed),
            approx_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Key of the `T0` shelf: circuit identity × seed × `T0` configuration
/// fingerprint.
type T0Key = (String, u64, String);

/// Key of the staged-compile shelf: circuit identity × pass selection
/// ([`CompileOptions::key`]).
type CompiledKey = (String, String);

/// The campaign-wide artifact cache. See the module docs.
pub struct ArtifactCache {
    circuits: Shelf<String, Circuit>,
    tapes: Shelf<String, GateTape>,
    compiled: Shelf<CompiledKey, CompiledCircuit>,
    faults: Shelf<String, Vec<Fault>>,
    t0s: Shelf<T0Key, GeneratedTest>,
    /// Wall-clock seconds each `T0` took to generate (recorded by the
    /// one worker that computed it; served to every sharer so session
    /// reports keep truthful timing context).
    t0_seconds: Mutex<HashMap<T0Key, f64>>,
    policy: CachePolicy,
    /// Chaos injection plan: poisons computes at `FaultSite::CachePoison`
    /// with transient failures. `None` in production.
    chaos: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .field("residency", &self.residency())
            .finish_non_exhaustive()
    }
}

/// Rough per-artifact byte models for the residency gauges. Deliberately
/// coarse — node/gate/vector counts times typical struct sizes — so the
/// report answers "what dominates?" without a real allocator probe.
mod approx {
    use super::{Circuit, CompiledCircuit, Fault, GateTape, GeneratedTest};

    pub fn circuit(c: &Circuit) -> usize {
        c.num_nodes() * 64
    }

    pub fn tape(t: &GateTape) -> usize {
        t.num_nodes() * 16 + t.num_gates() * 24
    }

    pub fn compiled(c: &CompiledCircuit) -> usize {
        // Baseline + optimized tape + the per-node site map.
        tape(c.baseline()) + tape(c.tape()) + c.site_map().num_nodes() * 8
    }

    pub fn faults(f: &[Fault]) -> usize {
        std::mem::size_of_val(f)
    }

    pub fn t0(g: &GeneratedTest) -> usize {
        // Packed vectors + one detection-time slot per fault.
        g.sequence.len() * g.sequence.width().div_ceil(8) + g.coverage.faults().len() * 24
    }
}

impl ArtifactCache {
    /// An empty cache with no telemetry sink ([`CacheStats`] and
    /// [`residency`](Self::residency) still work — they read the cache's
    /// own atomics).
    #[must_use]
    pub fn new() -> Self {
        ArtifactCache::with_obs(&Obs::noop())
    }

    /// An empty cache recording hit/miss/eviction counters and residency
    /// gauges (`cache.<shelf>.{hit,miss,evictions,resident,resident_bytes}`)
    /// into `obs`.
    #[must_use]
    pub fn with_obs(obs: &Obs) -> Self {
        ArtifactCache::with_config(obs, CachePolicy::default(), None)
    }

    /// An empty cache with a residency [`CachePolicy`] and an optional
    /// chaos [`FaultPlan`] poisoning computes (testing only).
    #[must_use]
    pub fn with_config(obs: &Obs, policy: CachePolicy, chaos: Option<Arc<FaultPlan>>) -> Self {
        let clock = Arc::new(AtomicU64::new(0));
        ArtifactCache {
            circuits: Shelf::new(obs, "circuit", Arc::clone(&clock)),
            tapes: Shelf::new(obs, "tape", Arc::clone(&clock)),
            compiled: Shelf::new(obs, "compiled", Arc::clone(&clock)),
            faults: Shelf::new(obs, "fault", Arc::clone(&clock)),
            t0s: Shelf::new(obs, "t0", clock),
            t0_seconds: Mutex::new(HashMap::new()),
            policy,
            chaos,
        }
    }

    /// The cache's residency policy.
    #[must_use]
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// An injected transient failure for the compute identified by
    /// `key`, if the chaos plan fires. Always an interrupted-I/O error so
    /// the failure taxonomy classifies it as transient.
    fn injected(&self, key: &str) -> Option<BistError> {
        let message = self.chaos.as_ref()?.poison(key)?;
        Some(BistError::Io(std::io::Error::new(std::io::ErrorKind::Interrupted, message)))
    }

    /// The parsed circuit for `spec`, computed once per distinct key.
    ///
    /// # Errors
    ///
    /// [`BatchError::Artifact`] wrapping the parse/build failure.
    pub fn circuit(&self, spec: &CircuitSpec) -> Result<Arc<Circuit>, BatchError> {
        let key = spec.key();
        self.circuits.get_or_compute(
            &key,
            &format!("circuit `{key}`"),
            || match self.injected(&format!("circuit:{key}")) {
                Some(e) => Err(e),
                None => spec.build(),
            },
            approx::circuit,
        )
    }

    /// The compiled gate tape for `spec`'s circuit, compiled once per
    /// distinct key — so a campaign compiles each circuit exactly once no
    /// matter how many jobs (or seeds, or backends) touch it.
    ///
    /// # Errors
    ///
    /// As for [`circuit`](Self::circuit).
    pub fn tape(
        &self,
        spec: &CircuitSpec,
        circuit: &Arc<Circuit>,
    ) -> Result<Arc<GateTape>, BatchError> {
        let key = spec.key();
        self.tapes.get_or_compute(
            &key,
            &format!("gate tape of `{key}`"),
            || {
                if let Some(e) = self.injected(&format!("tape:{key}")) {
                    return Err(e);
                }
                let tape = GateTape::compile(circuit);
                #[cfg(debug_assertions)]
                subseq_bist::verify::audit_tape(circuit, &tape);
                Ok(tape)
            },
            approx::tape,
        )
    }

    /// The staged compile of `spec`'s circuit under `options`, performed
    /// once per distinct (circuit, pass selection) pair. Reuses the
    /// cached baseline tape as the compile's baseline, so the optimized
    /// and unoptimized jobs of a campaign share one unoptimized tape.
    ///
    /// # Errors
    ///
    /// As for [`circuit`](Self::circuit).
    pub fn compiled(
        &self,
        spec: &CircuitSpec,
        options: CompileOptions,
        circuit: &Arc<Circuit>,
        tape: &Arc<GateTape>,
    ) -> Result<Arc<CompiledCircuit>, BatchError> {
        let key = (spec.key(), options.key());
        let describe = format!("staged compile of `{}` [{}]", spec.key(), options.key());
        let chaos_key = format!("compiled:{}:{}", spec.key(), options.key());
        self.compiled.get_or_compute(
            &key,
            &describe,
            || {
                if let Some(e) = self.injected(&chaos_key) {
                    return Err(e);
                }
                let compiled = compile_staged_with_baseline(circuit, options, Arc::clone(tape));
                #[cfg(debug_assertions)]
                subseq_bist::verify::audit_compiled(circuit, &compiled);
                Ok(compiled)
            },
            approx::compiled,
        )
    }

    /// The collapsed fault universe for `spec`'s circuit, computed once
    /// per distinct key.
    ///
    /// # Errors
    ///
    /// As for [`circuit`](Self::circuit).
    pub fn faults(
        &self,
        spec: &CircuitSpec,
        circuit: &Arc<Circuit>,
    ) -> Result<Arc<Vec<Fault>>, BatchError> {
        let key = spec.key();
        self.faults.get_or_compute(
            &key,
            &format!("fault universe of `{key}`"),
            || match self.injected(&format!("fault:{key}")) {
                Some(e) => Err(e),
                None => Ok(collapse(circuit, &fault_universe(circuit)).representatives().to_vec()),
            },
            |f| approx::faults(f),
        )
    }

    /// The generated `T0` (sequence + coverage) for `spec`'s circuit
    /// under `seed` and `tgen`, computed once per distinct
    /// (circuit, seed, config) triple. Reuses the cached collapsed
    /// universe and compiled tape, so the whole campaign collapses and
    /// compiles each circuit once.
    ///
    /// # Errors
    ///
    /// [`BatchError::Artifact`] wrapping the generation failure.
    pub fn generated_t0(
        &self,
        spec: &CircuitSpec,
        seed: u64,
        tgen: &TgenConfig,
        circuit: &Arc<Circuit>,
        faults: &Arc<Vec<Fault>>,
        tape: &Arc<GateTape>,
    ) -> Result<Arc<GeneratedTest>, BatchError> {
        let key = (spec.key(), seed, format!("{tgen:?}"));
        let describe = format!("T0 of `{}` (seed {seed})", spec.key());
        let chaos_key = format!("t0:{}:{seed}", spec.key());
        self.t0s.get_or_compute(
            &key,
            &describe,
            || {
                if let Some(e) = self.injected(&chaos_key) {
                    return Err(e);
                }
                let config = tgen.clone().seed(seed);
                let started = std::time::Instant::now();
                let generated = generate_t0_with_artifacts(
                    circuit,
                    &config,
                    faults.as_ref().clone(),
                    Arc::clone(tape),
                )
                .map_err(BistError::from)?;
                self.t0_seconds
                    .lock()
                    .expect("cache lock poisoned")
                    .insert(key.clone(), started.elapsed().as_secs_f64());
                Ok(generated)
            },
            approx::t0,
        )
    }

    /// Generation seconds of an already-computed `T0`, if any.
    fn t0_generation_seconds(&self, key: &T0Key) -> Option<f64> {
        self.t0_seconds.lock().expect("cache lock poisoned").get(key).copied()
    }

    /// The full artifact bundle for one job, ready for
    /// [`SessionBuilder::with_artifacts`](subseq_bist::SessionBuilder::with_artifacts).
    ///
    /// # Errors
    ///
    /// Any artifact computation failure, as above.
    pub fn artifacts_for(
        &self,
        spec: &CircuitSpec,
        seed: u64,
        tgen: &TgenConfig,
    ) -> Result<SessionArtifacts, BatchError> {
        self.artifacts_for_optimized(spec, seed, tgen, CompileOptions::none())
    }

    /// [`artifacts_for`](Self::artifacts_for) plus, for a non-empty pass
    /// selection, the shared staged compile of the circuit — the bundle
    /// behind a campaign's `--optimize` jobs. With
    /// [`CompileOptions::none`] the staged-compile shelf is never
    /// touched. Under a bounded [`CachePolicy`] the byte budget is
    /// enforced after the bundle is assembled (the bundle's own `Arc`s
    /// keep its artifacts alive even if evicted).
    ///
    /// # Errors
    ///
    /// Any artifact computation failure, as above.
    pub fn artifacts_for_optimized(
        &self,
        spec: &CircuitSpec,
        seed: u64,
        tgen: &TgenConfig,
        optimize: CompileOptions,
    ) -> Result<SessionArtifacts, BatchError> {
        let circuit = self.circuit(spec)?;
        let tape = self.tape(spec, &circuit)?;
        let faults = self.faults(spec, &circuit)?;
        let t0 = self.generated_t0(spec, seed, tgen, &circuit, &faults, &tape)?;
        let mut artifacts = SessionArtifacts::new()
            .circuit(Arc::clone(&circuit))
            .tape(Arc::clone(&tape))
            .faults(faults)
            .generated_t0(t0);
        if !optimize.is_none() {
            artifacts = artifacts.compiled(self.compiled(spec, optimize, &circuit, &tape)?);
        }
        let key = (spec.key(), seed, format!("{tgen:?}"));
        if let Some(seconds) = self.t0_generation_seconds(&key) {
            artifacts = artifacts.t0_seconds(seconds);
        }
        self.enforce_budget();
        Ok(artifacts)
    }

    /// Evicts least-recently-used artifacts until resident bytes fit the
    /// policy's budget (no-op when unbounded). Eviction picks the
    /// globally oldest completed entry across unpinned shelves; in-flight
    /// and failed slots never evict. Stops early if nothing evictable
    /// remains (everything left is pinned or in flight).
    pub fn enforce_budget(&self) {
        let Some(max_bytes) = self.policy.max_bytes else {
            return;
        };
        let pinned = self.policy.pinned_shelves;
        while self.residency().total_approx_bytes() > max_bytes {
            let mut oldest: Option<(u64, ShelfId)> = None;
            {
                let mut consider = |id: ShelfId, tick: Option<u64>| {
                    if pinned.contains(id) {
                        return;
                    }
                    if let Some(tick) = tick {
                        if oldest.is_none_or(|(best, _)| tick < best) {
                            oldest = Some((tick, id));
                        }
                    }
                };
                consider(ShelfId::Circuit, self.circuits.oldest_tick());
                consider(ShelfId::Tape, self.tapes.oldest_tick());
                consider(ShelfId::Compiled, self.compiled.oldest_tick());
                consider(ShelfId::Fault, self.faults.oldest_tick());
                consider(ShelfId::T0, self.t0s.oldest_tick());
            }
            let Some((_, id)) = oldest else {
                return;
            };
            match id {
                ShelfId::Circuit => {
                    self.circuits.evict_oldest();
                }
                ShelfId::Tape => {
                    self.tapes.evict_oldest();
                }
                ShelfId::Compiled => {
                    self.compiled.evict_oldest();
                }
                ShelfId::Fault => {
                    self.faults.evict_oldest();
                }
                ShelfId::T0 => {
                    // Keep the timing side-table in step with the shelf.
                    if let Some((key, _)) = self.t0s.evict_oldest() {
                        self.t0_seconds.lock().expect("cache lock poisoned").remove(&key);
                    }
                }
            }
        }
    }

    /// Current residency of every shelf — what the cache holds and
    /// roughly how much memory it pins.
    #[must_use]
    pub fn residency(&self) -> CacheResidency {
        CacheResidency {
            circuits: self.circuits.residency(),
            tapes: self.tapes.residency(),
            compiled: self.compiled.residency(),
            faults: self.faults.residency(),
            t0s: self.t0s.residency(),
        }
    }

    /// Current hit/miss/eviction counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let (circuit_misses, circuit_hits) = self.circuits.counters();
        let (tape_misses, tape_hits) = self.tapes.counters();
        let (compiled_misses, compiled_hits) = self.compiled.counters();
        let (fault_misses, fault_hits) = self.faults.counters();
        let (t0_misses, t0_hits) = self.t0s.counters();
        CacheStats {
            circuit_misses,
            circuit_hits,
            tape_misses,
            tape_hits,
            compiled_misses,
            compiled_hits,
            fault_misses,
            fault_hits,
            t0_misses,
            t0_hits,
            circuit_evictions: self.circuits.evicted(),
            tape_evictions: self.tapes.evicted(),
            compiled_evictions: self.compiled.evicted(),
            fault_evictions: self.faults.evicted(),
            t0_evictions: self.t0s.evicted(),
        }
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultpoint::{FaultPoint, FaultSite};

    fn s27_spec() -> CircuitSpec {
        CircuitSpec::Suite("s27".to_string())
    }

    #[test]
    fn artifacts_are_computed_once_and_shared() {
        let cache = ArtifactCache::new();
        let spec = s27_spec();
        let a = cache.circuit(&spec).unwrap();
        let b = cache.circuit(&spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let ga = cache.tape(&spec, &a).unwrap();
        let gb = cache.tape(&spec, &a).unwrap();
        assert!(Arc::ptr_eq(&ga, &gb));
        assert_eq!(ga.num_nodes(), a.num_nodes());
        let fa = cache.faults(&spec, &a).unwrap();
        let fb = cache.faults(&spec, &b).unwrap();
        assert!(Arc::ptr_eq(&fa, &fb));
        assert_eq!(fa.len(), 32);
        let tgen = TgenConfig::new().max_length(32);
        let ta = cache.generated_t0(&spec, 7, &tgen, &a, &fa, &ga).unwrap();
        let tb = cache.generated_t0(&spec, 7, &tgen, &a, &fa, &ga).unwrap();
        assert!(Arc::ptr_eq(&ta, &tb));
        // A different seed is a different artifact.
        let tc = cache.generated_t0(&spec, 8, &tgen, &a, &fa, &ga).unwrap();
        assert!(!Arc::ptr_eq(&ta, &tc));
        let stats = cache.stats();
        assert_eq!((stats.circuit_misses, stats.circuit_hits), (1, 1));
        assert_eq!((stats.tape_misses, stats.tape_hits), (1, 1));
        assert_eq!((stats.fault_misses, stats.fault_hits), (1, 1));
        assert_eq!((stats.t0_misses, stats.t0_hits), (2, 1));
        assert_eq!(stats.total_evictions(), 0, "unbounded cache never evicts");
        assert!(stats.to_string().contains("tapes"));
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let cache = ArtifactCache::new();
        let spec = s27_spec();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let c = cache.circuit(&spec).unwrap();
                    cache.faults(&spec, &c).unwrap();
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.circuit_misses, 1);
        assert_eq!(stats.circuit_hits, 7);
        assert_eq!(stats.fault_misses, 1);
        assert_eq!(stats.fault_hits, 7);
    }

    #[test]
    fn failed_artifacts_surface_and_stay_failed() {
        let cache = ArtifactCache::new();
        let spec = CircuitSpec::Suite("nope".to_string());
        let err = cache.circuit(&spec).unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
        // The failure is cached too: no recompute, same message.
        let again = cache.circuit(&spec).unwrap_err();
        assert!(again.to_string().contains("nope"));
        assert_eq!(cache.stats().circuit_misses, 1);
    }

    #[test]
    fn failures_are_computed_once_and_counted_as_hits_thereafter() {
        // A circuit that fails to parse: the error itself is the cached
        // artifact. The first request is the one miss (the computation
        // that actually ran and failed); every later request — same
        // thread or racing threads — is served the cached error and
        // counts as a hit, exactly like a successful artifact.
        let cache = ArtifactCache::new();
        let spec = CircuitSpec::File(std::path::PathBuf::from("/definitely/not/here.bench"));
        let first = cache.circuit(&spec).unwrap_err();
        assert!(first.to_string().contains("here.bench"), "{first}");
        match &first {
            BatchError::Artifact { transient, .. } => {
                assert!(!*transient, "a missing file is a permanent failure");
            }
            other => panic!("expected Artifact error, got {other}"),
        }
        for _ in 0..3 {
            let again = cache.circuit(&spec).unwrap_err();
            assert_eq!(again.to_string(), first.to_string(), "cached error is re-served");
        }
        let stats = cache.stats();
        assert_eq!((stats.circuit_misses, stats.circuit_hits), (1, 3));

        // Concurrent requesters of a distinct failing key: still exactly
        // one computation, everyone else hits.
        let bad = CircuitSpec::Suite("still-not-a-circuit".to_string());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let err = cache.circuit(&bad).unwrap_err();
                    assert!(err.to_string().contains("still-not-a-circuit"));
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.circuit_misses, 2, "one miss per distinct failing key");
        assert_eq!(stats.circuit_hits, 3 + 7);

        // The full-bundle path reports the same cached failure and never
        // touches the downstream shelves for a broken circuit.
        let tgen = TgenConfig::new().max_length(16);
        let bundle = cache.artifacts_for(&spec, 1, &tgen).unwrap_err();
        assert!(bundle.to_string().contains("here.bench"));
        let stats = cache.stats();
        assert_eq!((stats.circuit_misses, stats.circuit_hits), (2, 11));
        assert_eq!(stats.tape_misses + stats.tape_hits, 0, "no tape compiled for a failed parse");
        assert_eq!(stats.fault_misses + stats.fault_hits, 0);
        assert_eq!(stats.t0_misses + stats.t0_hits, 0);
    }

    #[test]
    fn transient_failures_release_their_slot_and_heal_on_retry() {
        // A chaos plan poisons the first T0 generation with a transient
        // (interrupted-I/O) failure. The failed request surfaces a
        // retryable error; the retry recomputes and succeeds — unlike a
        // permanent parse failure, which is cached forever.
        let plan =
            Arc::new(FaultPlan::new(3).point(FaultPoint::new(FaultSite::CachePoison, "t0:s27")));
        let cache = ArtifactCache::with_config(&Obs::noop(), CachePolicy::default(), Some(plan));
        let spec = s27_spec();
        let tgen = TgenConfig::new().max_length(16);
        let err = cache.artifacts_for(&spec, 1, &tgen).unwrap_err();
        match &err {
            BatchError::Artifact { transient, message, .. } => {
                assert!(*transient, "injected poison must classify as transient: {err}");
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected Artifact error, got {other}"),
        }
        // Retry: the poisoned slot was released, the plan's one fire is
        // spent, so the recompute succeeds.
        cache.artifacts_for(&spec, 1, &tgen).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.t0_misses, 2, "failed compute + healing recompute");
        assert_eq!(cache.residency().t0s.entries, 1);
    }

    #[test]
    fn bounded_cache_evicts_lru_and_recomputes_bit_identically() {
        // A budget far below one circuit's bundle: after each bundle the
        // cache evicts down to whatever it cannot evict (nothing is
        // pinned, so everything completed goes). Recomputed artifacts are
        // bit-identical because every computation is deterministic.
        let tgen = TgenConfig::new().max_length(16);
        let spec = s27_spec();
        let cache = ArtifactCache::with_config(&Obs::noop(), CachePolicy::bounded(1), None);
        // The bundle path enforces the budget after assembly.
        cache.artifacts_for(&spec, 5, &tgen).unwrap();
        let stats = cache.stats();
        assert!(stats.total_evictions() > 0, "budget of 1 byte must evict: {stats:?}");
        assert_eq!(cache.residency().total_approx_bytes(), 0, "everything evictable evicted");
        // Re-requesting an evicted artifact is a recompute (miss), and
        // the result matches bit for bit.
        let circuit = cache.circuit(&spec).unwrap();
        let tape = cache.tape(&spec, &circuit).unwrap();
        let faults = cache.faults(&spec, &circuit).unwrap();
        let first = cache.generated_t0(&spec, 5, &tgen, &circuit, &faults, &tape).unwrap();
        assert_eq!(cache.stats().t0_misses, 2, "evicted T0 recomputed, not hit");
        cache.enforce_budget();
        let second = cache.generated_t0(&spec, 5, &tgen, &circuit, &faults, &tape).unwrap();
        assert!(!Arc::ptr_eq(&first, &second), "evicted artifact was recomputed");
        assert_eq!(cache.stats().t0_misses, 3);
        assert_eq!(first.sequence, second.sequence, "recompute is bit-identical");
        assert_eq!(
            first.coverage.detected_count(),
            second.coverage.detected_count(),
            "recomputed coverage matches"
        );
    }

    #[test]
    fn pinned_shelves_survive_eviction() {
        let tgen = TgenConfig::new().max_length(16);
        let policy = CachePolicy::bounded(1).pin(ShelfId::T0).pin(ShelfId::Circuit);
        let cache = ArtifactCache::with_config(&Obs::noop(), policy, None);
        cache.artifacts_for(&s27_spec(), 5, &tgen).unwrap();
        let residency = cache.residency();
        assert_eq!(residency.t0s.entries, 1, "pinned shelf keeps its artifact");
        assert_eq!(residency.circuits.entries, 1, "pinned shelf keeps its artifact");
        assert_eq!(residency.tapes.entries, 0, "unpinned shelf evicted");
        assert_eq!(residency.faults.entries, 0, "unpinned shelf evicted");
        let stats = cache.stats();
        assert_eq!(stats.t0_evictions, 0);
        assert_eq!(stats.circuit_evictions, 0);
        assert_eq!(stats.tape_evictions, 1);
        assert_eq!(stats.fault_evictions, 1);
        // A pinned T0 is served from the cache on the next request.
        cache.artifacts_for(&s27_spec(), 5, &tgen).unwrap();
        assert_eq!(cache.stats().t0_hits, 1);
    }

    #[test]
    fn staged_compiles_are_keyed_by_pass_selection_and_shared() {
        let cache = ArtifactCache::new();
        let spec = s27_spec();
        let circuit = cache.circuit(&spec).unwrap();
        let tape = cache.tape(&spec, &circuit).unwrap();
        let a = cache.compiled(&spec, CompileOptions::all(), &circuit, &tape).unwrap();
        let b = cache.compiled(&spec, CompileOptions::all(), &circuit, &tape).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // The compile's baseline is the cached unoptimized tape itself.
        assert!(Arc::ptr_eq(a.baseline(), &tape));
        // A different pass selection is a different artifact...
        let none = cache.compiled(&spec, CompileOptions::none(), &circuit, &tape).unwrap();
        assert!(!Arc::ptr_eq(&a, &none));
        // ...and the identity compile shares the baseline tape outright.
        assert!(Arc::ptr_eq(none.tape(), &tape));
        let stats = cache.stats();
        assert_eq!((stats.compiled_misses, stats.compiled_hits), (2, 1));
        assert!(stats.to_string().contains("staged compiles"));
        // An optimized bundle carries the staged compile; a plain bundle
        // never touches the shelf.
        let tgen = TgenConfig::new().max_length(16);
        cache.artifacts_for_optimized(&spec, 3, &tgen, CompileOptions::all()).unwrap();
        assert_eq!(cache.stats().compiled_hits, 2);
        cache.artifacts_for(&spec, 3, &tgen).unwrap();
        assert_eq!(cache.stats().compiled_misses + cache.stats().compiled_hits, 4);
    }

    #[test]
    fn instrumented_cache_mirrors_stats_and_tracks_residency() {
        let registry = Arc::new(bist_obs::Registry::new());
        let cache = ArtifactCache::with_obs(&Obs::with_registry(Arc::clone(&registry)));
        let spec = s27_spec();
        let tgen = TgenConfig::new().max_length(16);
        cache.artifacts_for(&spec, 1, &tgen).unwrap();
        cache.artifacts_for(&spec, 1, &tgen).unwrap();
        let snap = registry.snapshot();
        let stats = cache.stats();
        // The registry counters are an exact mirror of CacheStats.
        assert_eq!(snap.counter("cache.circuit.miss"), Some(stats.circuit_misses as u64));
        assert_eq!(snap.counter("cache.circuit.hit"), Some(stats.circuit_hits as u64));
        assert_eq!(snap.counter("cache.tape.miss"), Some(stats.tape_misses as u64));
        assert_eq!(snap.counter("cache.tape.hit"), Some(stats.tape_hits as u64));
        assert_eq!(snap.counter("cache.t0.miss"), Some(stats.t0_misses as u64));
        // One artifact resident per shelf (same circuit, seed, config).
        let residency = cache.residency();
        assert_eq!(residency.circuits.entries, 1);
        assert_eq!(residency.tapes.entries, 1);
        assert_eq!(residency.faults.entries, 1);
        assert_eq!(residency.t0s.entries, 1);
        assert_eq!(residency.compiled.entries, 0, "no staged compile requested");
        assert!(residency.total_approx_bytes() > 0);
        assert_eq!(snap.gauge("cache.circuit.resident"), Some(1));
        assert_eq!(
            snap.gauge("cache.tape.resident_bytes"),
            Some(residency.tapes.approx_bytes as i64)
        );
        assert!(residency.to_string().contains("resident:"), "{residency}");
        // Cached failures occupy a slot but are not resident artifacts.
        let bad = CircuitSpec::Suite("nope".to_string());
        cache.circuit(&bad).unwrap_err();
        assert_eq!(cache.residency().circuits.entries, 1);
    }

    #[test]
    fn instrumented_eviction_counters_mirror_stats() {
        let registry = Arc::new(bist_obs::Registry::new());
        let obs = Obs::with_registry(Arc::clone(&registry));
        let cache = ArtifactCache::with_config(&obs, CachePolicy::bounded(1), None);
        let tgen = TgenConfig::new().max_length(16);
        cache.artifacts_for(&s27_spec(), 1, &tgen).unwrap();
        let snap = registry.snapshot();
        let stats = cache.stats();
        assert!(stats.total_evictions() > 0);
        assert_eq!(snap.counter("cache.t0.evictions"), Some(stats.t0_evictions as u64));
        assert_eq!(snap.counter("cache.circuit.evictions"), Some(stats.circuit_evictions as u64));
        assert_eq!(snap.gauge("cache.t0.resident"), Some(0), "gauge follows the eviction");
        assert_eq!(snap.gauge("cache.t0.resident_bytes"), Some(0));
    }

    #[test]
    fn bundle_assembles_everything() {
        let cache = ArtifactCache::new();
        let tgen = TgenConfig::new().max_length(16);
        cache.artifacts_for(&s27_spec(), 3, &tgen).unwrap();
        let stats = cache.stats();
        assert_eq!(
            (stats.circuit_misses, stats.tape_misses, stats.fault_misses, stats.t0_misses),
            (1, 1, 1, 1)
        );
        // A second job over the same circuit compiles nothing new.
        cache.artifacts_for(&s27_spec(), 4, &tgen).unwrap();
        assert_eq!(cache.stats().tape_misses, 1);
        assert_eq!(cache.stats().tape_hits, 1);
    }
}
