//! The shared, thread-safe artifact cache behind a campaign run.
//!
//! Jobs that touch the same circuit share four expensive artifacts via
//! [`Arc`]: the parsed [`Circuit`], its compiled [`GateTape`] (the flat
//! instruction form every simulation engine executes), its collapsed
//! fault universe, and — per (seed, `T0` config) — the generated `T0`
//! with its coverage. Each
//! artifact is computed **exactly once** no matter how many workers race
//! for it: the per-key slot is a [`OnceLock`], so the first worker runs
//! the computation while later workers block on the same slot and then
//! share the result. Hit/miss counters make the reuse observable (and
//! testable).

use crate::campaign::CircuitSpec;
use crate::BatchError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use subseq_bist::netlist::{compile_staged_with_baseline, Circuit, GateTape};
use subseq_bist::sim::{collapse, fault_universe, Fault};
use subseq_bist::tgen::{generate_t0_with_artifacts, GeneratedTest, TgenConfig};
use subseq_bist::{BistError, CompileOptions, CompiledCircuit, SessionArtifacts};

/// A snapshot of the cache's hit/miss counters.
///
/// A "miss" is a computation actually performed; a "hit" is a request
/// served from (or while waiting on) an existing slot. For a campaign of
/// `J` jobs over `C` distinct circuits, a fully shared cache shows
/// `C` misses and `J - C` hits on the circuit and fault shelves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Parsed-circuit computations performed.
    pub circuit_misses: usize,
    /// Parsed-circuit requests served from the cache.
    pub circuit_hits: usize,
    /// Gate-tape compilations performed.
    pub tape_misses: usize,
    /// Gate-tape requests served from the cache.
    pub tape_hits: usize,
    /// Staged (optimizing) compiles performed.
    pub compiled_misses: usize,
    /// Staged-compile requests served from the cache.
    pub compiled_hits: usize,
    /// Fault-universe collapses performed.
    pub fault_misses: usize,
    /// Fault-universe requests served from the cache.
    pub fault_hits: usize,
    /// `T0` generations performed.
    pub t0_misses: usize,
    /// `T0` requests served from the cache.
    pub t0_hits: usize,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuits {}+{} reused, tapes {}+{} reused, staged compiles {}+{} reused, universes \
             {}+{} reused, T0s {}+{} reused",
            self.circuit_misses,
            self.circuit_hits,
            self.tape_misses,
            self.tape_hits,
            self.compiled_misses,
            self.compiled_hits,
            self.fault_misses,
            self.fault_hits,
            self.t0_misses,
            self.t0_hits,
        )
    }
}

/// A compute-once slot shared by every requester of one key (the error
/// arm caches failures too, so a broken artifact fails every job fast).
type Slot<V> = Arc<OnceLock<Result<Arc<V>, String>>>;

/// One keyed shelf of the cache: a map of compute-once slots.
struct Shelf<K, V> {
    slots: Mutex<HashMap<K, Slot<V>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<K: std::hash::Hash + Eq + Clone, V> Shelf<K, V> {
    fn new() -> Self {
        Shelf {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Returns the cached value for `key`, computing it (exactly once
    /// across all threads) on first request. `describe` names the
    /// artifact in errors.
    fn get_or_compute(
        &self,
        key: &K,
        describe: &str,
        compute: impl FnOnce() -> Result<V, BistError>,
    ) -> Result<Arc<V>, BatchError> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            Arc::clone(slots.entry(key.clone()).or_default())
        };
        let mut computed = false;
        let outcome = slot.get_or_init(|| {
            computed = true;
            compute().map(Arc::new).map_err(|e| e.to_string())
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        match outcome {
            Ok(value) => Ok(Arc::clone(value)),
            Err(message) => Err(BatchError::Artifact {
                artifact: describe.to_string(),
                message: message.clone(),
            }),
        }
    }

    fn counters(&self) -> (usize, usize) {
        (self.misses.load(Ordering::Relaxed), self.hits.load(Ordering::Relaxed))
    }
}

/// Key of the `T0` shelf: circuit identity × seed × `T0` configuration
/// fingerprint.
type T0Key = (String, u64, String);

/// Key of the staged-compile shelf: circuit identity × pass selection
/// ([`CompileOptions::key`]).
type CompiledKey = (String, String);

/// The campaign-wide artifact cache. See the module docs.
pub struct ArtifactCache {
    circuits: Shelf<String, Circuit>,
    tapes: Shelf<String, GateTape>,
    compiled: Shelf<CompiledKey, CompiledCircuit>,
    faults: Shelf<String, Vec<Fault>>,
    t0s: Shelf<T0Key, GeneratedTest>,
    /// Wall-clock seconds each `T0` took to generate (recorded by the
    /// one worker that computed it; served to every sharer so session
    /// reports keep truthful timing context).
    t0_seconds: Mutex<HashMap<T0Key, f64>>,
}

impl ArtifactCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ArtifactCache {
            circuits: Shelf::new(),
            tapes: Shelf::new(),
            compiled: Shelf::new(),
            faults: Shelf::new(),
            t0s: Shelf::new(),
            t0_seconds: Mutex::new(HashMap::new()),
        }
    }

    /// The parsed circuit for `spec`, computed once per distinct key.
    ///
    /// # Errors
    ///
    /// [`BatchError::Artifact`] wrapping the parse/build failure.
    pub fn circuit(&self, spec: &CircuitSpec) -> Result<Arc<Circuit>, BatchError> {
        let key = spec.key();
        self.circuits.get_or_compute(&key, &format!("circuit `{key}`"), || spec.build())
    }

    /// The compiled gate tape for `spec`'s circuit, compiled once per
    /// distinct key — so a campaign compiles each circuit exactly once no
    /// matter how many jobs (or seeds, or backends) touch it.
    ///
    /// # Errors
    ///
    /// As for [`circuit`](Self::circuit).
    pub fn tape(
        &self,
        spec: &CircuitSpec,
        circuit: &Arc<Circuit>,
    ) -> Result<Arc<GateTape>, BatchError> {
        let key = spec.key();
        self.tapes.get_or_compute(&key, &format!("gate tape of `{key}`"), || {
            let tape = GateTape::compile(circuit);
            #[cfg(debug_assertions)]
            subseq_bist::verify::audit_tape(circuit, &tape);
            Ok(tape)
        })
    }

    /// The staged compile of `spec`'s circuit under `options`, performed
    /// once per distinct (circuit, pass selection) pair. Reuses the
    /// cached baseline tape as the compile's baseline, so the optimized
    /// and unoptimized jobs of a campaign share one unoptimized tape.
    ///
    /// # Errors
    ///
    /// As for [`circuit`](Self::circuit).
    pub fn compiled(
        &self,
        spec: &CircuitSpec,
        options: CompileOptions,
        circuit: &Arc<Circuit>,
        tape: &Arc<GateTape>,
    ) -> Result<Arc<CompiledCircuit>, BatchError> {
        let key = (spec.key(), options.key());
        let describe = format!("staged compile of `{}` [{}]", spec.key(), options.key());
        self.compiled.get_or_compute(&key, &describe, || {
            let compiled = compile_staged_with_baseline(circuit, options, Arc::clone(tape));
            #[cfg(debug_assertions)]
            subseq_bist::verify::audit_compiled(circuit, &compiled);
            Ok(compiled)
        })
    }

    /// The collapsed fault universe for `spec`'s circuit, computed once
    /// per distinct key.
    ///
    /// # Errors
    ///
    /// As for [`circuit`](Self::circuit).
    pub fn faults(
        &self,
        spec: &CircuitSpec,
        circuit: &Arc<Circuit>,
    ) -> Result<Arc<Vec<Fault>>, BatchError> {
        let key = spec.key();
        self.faults.get_or_compute(&key, &format!("fault universe of `{key}`"), || {
            Ok(collapse(circuit, &fault_universe(circuit)).representatives().to_vec())
        })
    }

    /// The generated `T0` (sequence + coverage) for `spec`'s circuit
    /// under `seed` and `tgen`, computed once per distinct
    /// (circuit, seed, config) triple. Reuses the cached collapsed
    /// universe and compiled tape, so the whole campaign collapses and
    /// compiles each circuit once.
    ///
    /// # Errors
    ///
    /// [`BatchError::Artifact`] wrapping the generation failure.
    pub fn generated_t0(
        &self,
        spec: &CircuitSpec,
        seed: u64,
        tgen: &TgenConfig,
        circuit: &Arc<Circuit>,
        faults: &Arc<Vec<Fault>>,
        tape: &Arc<GateTape>,
    ) -> Result<Arc<GeneratedTest>, BatchError> {
        let key = (spec.key(), seed, format!("{tgen:?}"));
        let describe = format!("T0 of `{}` (seed {seed})", spec.key());
        self.t0s.get_or_compute(&key, &describe, || {
            let config = tgen.clone().seed(seed);
            let started = std::time::Instant::now();
            let generated = generate_t0_with_artifacts(
                circuit,
                &config,
                faults.as_ref().clone(),
                Arc::clone(tape),
            )
            .map_err(BistError::from)?;
            self.t0_seconds
                .lock()
                .expect("cache lock poisoned")
                .insert(key.clone(), started.elapsed().as_secs_f64());
            Ok(generated)
        })
    }

    /// Generation seconds of an already-computed `T0`, if any.
    fn t0_generation_seconds(&self, key: &T0Key) -> Option<f64> {
        self.t0_seconds.lock().expect("cache lock poisoned").get(key).copied()
    }

    /// The full artifact bundle for one job, ready for
    /// [`SessionBuilder::with_artifacts`](subseq_bist::SessionBuilder::with_artifacts).
    ///
    /// # Errors
    ///
    /// Any artifact computation failure, as above.
    pub fn artifacts_for(
        &self,
        spec: &CircuitSpec,
        seed: u64,
        tgen: &TgenConfig,
    ) -> Result<SessionArtifacts, BatchError> {
        self.artifacts_for_optimized(spec, seed, tgen, CompileOptions::none())
    }

    /// [`artifacts_for`](Self::artifacts_for) plus, for a non-empty pass
    /// selection, the shared staged compile of the circuit — the bundle
    /// behind a campaign's `--optimize` jobs. With
    /// [`CompileOptions::none`] the staged-compile shelf is never
    /// touched.
    ///
    /// # Errors
    ///
    /// Any artifact computation failure, as above.
    pub fn artifacts_for_optimized(
        &self,
        spec: &CircuitSpec,
        seed: u64,
        tgen: &TgenConfig,
        optimize: CompileOptions,
    ) -> Result<SessionArtifacts, BatchError> {
        let circuit = self.circuit(spec)?;
        let tape = self.tape(spec, &circuit)?;
        let faults = self.faults(spec, &circuit)?;
        let t0 = self.generated_t0(spec, seed, tgen, &circuit, &faults, &tape)?;
        let mut artifacts = SessionArtifacts::new()
            .circuit(Arc::clone(&circuit))
            .tape(Arc::clone(&tape))
            .faults(faults)
            .generated_t0(t0);
        if !optimize.is_none() {
            artifacts = artifacts.compiled(self.compiled(spec, optimize, &circuit, &tape)?);
        }
        let key = (spec.key(), seed, format!("{tgen:?}"));
        if let Some(seconds) = self.t0_generation_seconds(&key) {
            artifacts = artifacts.t0_seconds(seconds);
        }
        Ok(artifacts)
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let (circuit_misses, circuit_hits) = self.circuits.counters();
        let (tape_misses, tape_hits) = self.tapes.counters();
        let (compiled_misses, compiled_hits) = self.compiled.counters();
        let (fault_misses, fault_hits) = self.faults.counters();
        let (t0_misses, t0_hits) = self.t0s.counters();
        CacheStats {
            circuit_misses,
            circuit_hits,
            tape_misses,
            tape_hits,
            compiled_misses,
            compiled_hits,
            fault_misses,
            fault_hits,
            t0_misses,
            t0_hits,
        }
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s27_spec() -> CircuitSpec {
        CircuitSpec::Suite("s27".to_string())
    }

    #[test]
    fn artifacts_are_computed_once_and_shared() {
        let cache = ArtifactCache::new();
        let spec = s27_spec();
        let a = cache.circuit(&spec).unwrap();
        let b = cache.circuit(&spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let ga = cache.tape(&spec, &a).unwrap();
        let gb = cache.tape(&spec, &a).unwrap();
        assert!(Arc::ptr_eq(&ga, &gb));
        assert_eq!(ga.num_nodes(), a.num_nodes());
        let fa = cache.faults(&spec, &a).unwrap();
        let fb = cache.faults(&spec, &b).unwrap();
        assert!(Arc::ptr_eq(&fa, &fb));
        assert_eq!(fa.len(), 32);
        let tgen = TgenConfig::new().max_length(32);
        let ta = cache.generated_t0(&spec, 7, &tgen, &a, &fa, &ga).unwrap();
        let tb = cache.generated_t0(&spec, 7, &tgen, &a, &fa, &ga).unwrap();
        assert!(Arc::ptr_eq(&ta, &tb));
        // A different seed is a different artifact.
        let tc = cache.generated_t0(&spec, 8, &tgen, &a, &fa, &ga).unwrap();
        assert!(!Arc::ptr_eq(&ta, &tc));
        let stats = cache.stats();
        assert_eq!((stats.circuit_misses, stats.circuit_hits), (1, 1));
        assert_eq!((stats.tape_misses, stats.tape_hits), (1, 1));
        assert_eq!((stats.fault_misses, stats.fault_hits), (1, 1));
        assert_eq!((stats.t0_misses, stats.t0_hits), (2, 1));
        assert!(stats.to_string().contains("tapes"));
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let cache = ArtifactCache::new();
        let spec = s27_spec();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let c = cache.circuit(&spec).unwrap();
                    cache.faults(&spec, &c).unwrap();
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.circuit_misses, 1);
        assert_eq!(stats.circuit_hits, 7);
        assert_eq!(stats.fault_misses, 1);
        assert_eq!(stats.fault_hits, 7);
    }

    #[test]
    fn failed_artifacts_surface_and_stay_failed() {
        let cache = ArtifactCache::new();
        let spec = CircuitSpec::Suite("nope".to_string());
        let err = cache.circuit(&spec).unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
        // The failure is cached too: no recompute, same message.
        let again = cache.circuit(&spec).unwrap_err();
        assert!(again.to_string().contains("nope"));
        assert_eq!(cache.stats().circuit_misses, 1);
    }

    #[test]
    fn failures_are_computed_once_and_counted_as_hits_thereafter() {
        // A circuit that fails to parse: the error itself is the cached
        // artifact. The first request is the one miss (the computation
        // that actually ran and failed); every later request — same
        // thread or racing threads — is served the cached error and
        // counts as a hit, exactly like a successful artifact.
        let cache = ArtifactCache::new();
        let spec = CircuitSpec::File(std::path::PathBuf::from("/definitely/not/here.bench"));
        let first = cache.circuit(&spec).unwrap_err();
        assert!(first.to_string().contains("here.bench"), "{first}");
        for _ in 0..3 {
            let again = cache.circuit(&spec).unwrap_err();
            assert_eq!(again.to_string(), first.to_string(), "cached error is re-served");
        }
        let stats = cache.stats();
        assert_eq!((stats.circuit_misses, stats.circuit_hits), (1, 3));

        // Concurrent requesters of a distinct failing key: still exactly
        // one computation, everyone else hits.
        let bad = CircuitSpec::Suite("still-not-a-circuit".to_string());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let err = cache.circuit(&bad).unwrap_err();
                    assert!(err.to_string().contains("still-not-a-circuit"));
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.circuit_misses, 2, "one miss per distinct failing key");
        assert_eq!(stats.circuit_hits, 3 + 7);

        // The full-bundle path reports the same cached failure and never
        // touches the downstream shelves for a broken circuit.
        let tgen = TgenConfig::new().max_length(16);
        let bundle = cache.artifacts_for(&spec, 1, &tgen).unwrap_err();
        assert!(bundle.to_string().contains("here.bench"));
        let stats = cache.stats();
        assert_eq!((stats.circuit_misses, stats.circuit_hits), (2, 11));
        assert_eq!(stats.tape_misses + stats.tape_hits, 0, "no tape compiled for a failed parse");
        assert_eq!(stats.fault_misses + stats.fault_hits, 0);
        assert_eq!(stats.t0_misses + stats.t0_hits, 0);
    }

    #[test]
    fn staged_compiles_are_keyed_by_pass_selection_and_shared() {
        let cache = ArtifactCache::new();
        let spec = s27_spec();
        let circuit = cache.circuit(&spec).unwrap();
        let tape = cache.tape(&spec, &circuit).unwrap();
        let a = cache.compiled(&spec, CompileOptions::all(), &circuit, &tape).unwrap();
        let b = cache.compiled(&spec, CompileOptions::all(), &circuit, &tape).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // The compile's baseline is the cached unoptimized tape itself.
        assert!(Arc::ptr_eq(a.baseline(), &tape));
        // A different pass selection is a different artifact...
        let none = cache.compiled(&spec, CompileOptions::none(), &circuit, &tape).unwrap();
        assert!(!Arc::ptr_eq(&a, &none));
        // ...and the identity compile shares the baseline tape outright.
        assert!(Arc::ptr_eq(none.tape(), &tape));
        let stats = cache.stats();
        assert_eq!((stats.compiled_misses, stats.compiled_hits), (2, 1));
        assert!(stats.to_string().contains("staged compiles"));
        // An optimized bundle carries the staged compile; a plain bundle
        // never touches the shelf.
        let tgen = TgenConfig::new().max_length(16);
        cache.artifacts_for_optimized(&spec, 3, &tgen, CompileOptions::all()).unwrap();
        assert_eq!(cache.stats().compiled_hits, 2);
        cache.artifacts_for(&spec, 3, &tgen).unwrap();
        assert_eq!(cache.stats().compiled_misses + cache.stats().compiled_hits, 4);
    }

    #[test]
    fn bundle_assembles_everything() {
        let cache = ArtifactCache::new();
        let tgen = TgenConfig::new().max_length(16);
        cache.artifacts_for(&s27_spec(), 3, &tgen).unwrap();
        let stats = cache.stats();
        assert_eq!(
            (stats.circuit_misses, stats.tape_misses, stats.fault_misses, stats.t0_misses),
            (1, 1, 1, 1)
        );
        // A second job over the same circuit compiles nothing new.
        cache.artifacts_for(&s27_spec(), 4, &tgen).unwrap();
        assert_eq!(cache.stats().tape_misses, 1);
        assert_eq!(cache.stats().tape_hits, 1);
    }
}
