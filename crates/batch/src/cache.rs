//! The shared, thread-safe artifact cache behind a campaign run.
//!
//! Jobs that touch the same circuit share four expensive artifacts via
//! [`Arc`]: the parsed [`Circuit`], its compiled [`GateTape`] (the flat
//! instruction form every simulation engine executes), its collapsed
//! fault universe, and — per (seed, `T0` config) — the generated `T0`
//! with its coverage. Each
//! artifact is computed **exactly once** no matter how many workers race
//! for it: the per-key slot is a [`OnceLock`], so the first worker runs
//! the computation while later workers block on the same slot and then
//! share the result. Hit/miss counters make the reuse observable (and
//! testable).

use crate::campaign::CircuitSpec;
use crate::BatchError;
use bist_obs::{CounterHandle, GaugeHandle, Obs};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use subseq_bist::netlist::{compile_staged_with_baseline, Circuit, GateTape};
use subseq_bist::sim::{collapse, fault_universe, Fault};
use subseq_bist::tgen::{generate_t0_with_artifacts, GeneratedTest, TgenConfig};
use subseq_bist::{BistError, CompileOptions, CompiledCircuit, SessionArtifacts};

/// A snapshot of the cache's hit/miss counters.
///
/// A "miss" is a computation actually performed; a "hit" is a request
/// served from (or while waiting on) an existing slot. For a campaign of
/// `J` jobs over `C` distinct circuits, a fully shared cache shows
/// `C` misses and `J - C` hits on the circuit and fault shelves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Parsed-circuit computations performed.
    pub circuit_misses: usize,
    /// Parsed-circuit requests served from the cache.
    pub circuit_hits: usize,
    /// Gate-tape compilations performed.
    pub tape_misses: usize,
    /// Gate-tape requests served from the cache.
    pub tape_hits: usize,
    /// Staged (optimizing) compiles performed.
    pub compiled_misses: usize,
    /// Staged-compile requests served from the cache.
    pub compiled_hits: usize,
    /// Fault-universe collapses performed.
    pub fault_misses: usize,
    /// Fault-universe requests served from the cache.
    pub fault_hits: usize,
    /// `T0` generations performed.
    pub t0_misses: usize,
    /// `T0` requests served from the cache.
    pub t0_hits: usize,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "circuits {}+{} reused, tapes {}+{} reused, staged compiles {}+{} reused, universes \
             {}+{} reused, T0s {}+{} reused",
            self.circuit_misses,
            self.circuit_hits,
            self.tape_misses,
            self.tape_hits,
            self.compiled_misses,
            self.compiled_hits,
            self.fault_misses,
            self.fault_hits,
            self.t0_misses,
            self.t0_hits,
        )
    }
}

/// Residency of one cache shelf: how many artifacts it holds and a rough
/// byte estimate of what they pin in memory. Only successfully computed
/// artifacts count (cached failures occupy a slot but hold no data).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShelfResidency {
    /// Number of resident artifacts.
    pub entries: usize,
    /// Approximate bytes the resident artifacts pin (coarse per-artifact
    /// models — node/gate/vector counts times typical struct sizes).
    pub approx_bytes: usize,
}

/// Residency of every shelf — the cache's memory footprint at a glance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheResidency {
    /// Parsed circuits.
    pub circuits: ShelfResidency,
    /// Compiled gate tapes.
    pub tapes: ShelfResidency,
    /// Staged (optimizing) compiles.
    pub compiled: ShelfResidency,
    /// Collapsed fault universes.
    pub faults: ShelfResidency,
    /// Generated `T0`s with coverage.
    pub t0s: ShelfResidency,
}

impl CacheResidency {
    /// Total approximate resident bytes across all shelves.
    #[must_use]
    pub fn total_approx_bytes(&self) -> usize {
        self.circuits.approx_bytes
            + self.tapes.approx_bytes
            + self.compiled.approx_bytes
            + self.faults.approx_bytes
            + self.t0s.approx_bytes
    }
}

impl std::fmt::Display for CacheResidency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "resident: {} circuits, {} tapes, {} staged compiles, {} universes, {} T0s \
             (~{} KiB pinned)",
            self.circuits.entries,
            self.tapes.entries,
            self.compiled.entries,
            self.faults.entries,
            self.t0s.entries,
            self.total_approx_bytes().div_ceil(1024),
        )
    }
}

/// A compute-once slot shared by every requester of one key (the error
/// arm caches failures too, so a broken artifact fails every job fast).
type Slot<V> = Arc<OnceLock<Result<Arc<V>, String>>>;

/// Pre-resolved telemetry handles of one shelf: hit/miss counters plus
/// resident-entry and approx-resident-bytes gauges, named
/// `cache.<shelf>.{hit,miss,resident,resident_bytes}`. No-op (a branch
/// per event) unless the cache was built with an active sink.
struct ShelfObs {
    hit: CounterHandle,
    miss: CounterHandle,
    resident: GaugeHandle,
    resident_bytes: GaugeHandle,
}

impl ShelfObs {
    fn new(obs: &Obs, shelf: &str) -> Self {
        ShelfObs {
            hit: obs.counter(&format!("cache.{shelf}.hit")),
            miss: obs.counter(&format!("cache.{shelf}.miss")),
            resident: obs.gauge(&format!("cache.{shelf}.resident")),
            resident_bytes: obs.gauge(&format!("cache.{shelf}.resident_bytes")),
        }
    }
}

/// One keyed shelf of the cache: a map of compute-once slots.
struct Shelf<K, V> {
    slots: Mutex<HashMap<K, Slot<V>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    resident: AtomicUsize,
    resident_bytes: AtomicUsize,
    obs: ShelfObs,
}

impl<K: std::hash::Hash + Eq + Clone, V> Shelf<K, V> {
    fn new(obs: &Obs, name: &str) -> Self {
        Shelf {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            resident: AtomicUsize::new(0),
            resident_bytes: AtomicUsize::new(0),
            obs: ShelfObs::new(obs, name),
        }
    }

    /// Returns the cached value for `key`, computing it (exactly once
    /// across all threads) on first request. `describe` names the
    /// artifact in errors; `approx_bytes` estimates what a newly computed
    /// artifact pins in memory (for the residency gauges).
    fn get_or_compute(
        &self,
        key: &K,
        describe: &str,
        compute: impl FnOnce() -> Result<V, BistError>,
        approx_bytes: impl FnOnce(&V) -> usize,
    ) -> Result<Arc<V>, BatchError> {
        let slot = {
            let mut slots = self.slots.lock().expect("cache lock poisoned");
            Arc::clone(slots.entry(key.clone()).or_default())
        };
        let mut computed = false;
        let outcome = slot.get_or_init(|| {
            computed = true;
            compute().map(Arc::new).map_err(|e| e.to_string())
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.obs.miss.inc();
            if let Ok(value) = outcome {
                let bytes = approx_bytes(value);
                self.resident.fetch_add(1, Ordering::Relaxed);
                self.resident_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.obs.resident.add(1);
                self.obs.resident_bytes.add(i64::try_from(bytes).unwrap_or(i64::MAX));
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs.hit.inc();
        }
        match outcome {
            Ok(value) => Ok(Arc::clone(value)),
            Err(message) => Err(BatchError::Artifact {
                artifact: describe.to_string(),
                message: message.clone(),
            }),
        }
    }

    fn counters(&self) -> (usize, usize) {
        (self.misses.load(Ordering::Relaxed), self.hits.load(Ordering::Relaxed))
    }

    fn residency(&self) -> ShelfResidency {
        ShelfResidency {
            entries: self.resident.load(Ordering::Relaxed),
            approx_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Key of the `T0` shelf: circuit identity × seed × `T0` configuration
/// fingerprint.
type T0Key = (String, u64, String);

/// Key of the staged-compile shelf: circuit identity × pass selection
/// ([`CompileOptions::key`]).
type CompiledKey = (String, String);

/// The campaign-wide artifact cache. See the module docs.
pub struct ArtifactCache {
    circuits: Shelf<String, Circuit>,
    tapes: Shelf<String, GateTape>,
    compiled: Shelf<CompiledKey, CompiledCircuit>,
    faults: Shelf<String, Vec<Fault>>,
    t0s: Shelf<T0Key, GeneratedTest>,
    /// Wall-clock seconds each `T0` took to generate (recorded by the
    /// one worker that computed it; served to every sharer so session
    /// reports keep truthful timing context).
    t0_seconds: Mutex<HashMap<T0Key, f64>>,
}

/// Rough per-artifact byte models for the residency gauges. Deliberately
/// coarse — node/gate/vector counts times typical struct sizes — so the
/// report answers "what dominates?" without a real allocator probe.
mod approx {
    use super::{Circuit, CompiledCircuit, Fault, GateTape, GeneratedTest};

    pub fn circuit(c: &Circuit) -> usize {
        c.num_nodes() * 64
    }

    pub fn tape(t: &GateTape) -> usize {
        t.num_nodes() * 16 + t.num_gates() * 24
    }

    pub fn compiled(c: &CompiledCircuit) -> usize {
        // Baseline + optimized tape + the per-node site map.
        tape(c.baseline()) + tape(c.tape()) + c.site_map().num_nodes() * 8
    }

    pub fn faults(f: &[Fault]) -> usize {
        std::mem::size_of_val(f)
    }

    pub fn t0(g: &GeneratedTest) -> usize {
        // Packed vectors + one detection-time slot per fault.
        g.sequence.len() * g.sequence.width().div_ceil(8) + g.coverage.faults().len() * 24
    }
}

impl ArtifactCache {
    /// An empty cache with no telemetry sink ([`CacheStats`] and
    /// [`residency`](Self::residency) still work — they read the cache's
    /// own atomics).
    #[must_use]
    pub fn new() -> Self {
        ArtifactCache::with_obs(&Obs::noop())
    }

    /// An empty cache recording hit/miss counters and residency gauges
    /// (`cache.<shelf>.{hit,miss,resident,resident_bytes}`) into `obs`.
    #[must_use]
    pub fn with_obs(obs: &Obs) -> Self {
        ArtifactCache {
            circuits: Shelf::new(obs, "circuit"),
            tapes: Shelf::new(obs, "tape"),
            compiled: Shelf::new(obs, "compiled"),
            faults: Shelf::new(obs, "fault"),
            t0s: Shelf::new(obs, "t0"),
            t0_seconds: Mutex::new(HashMap::new()),
        }
    }

    /// The parsed circuit for `spec`, computed once per distinct key.
    ///
    /// # Errors
    ///
    /// [`BatchError::Artifact`] wrapping the parse/build failure.
    pub fn circuit(&self, spec: &CircuitSpec) -> Result<Arc<Circuit>, BatchError> {
        let key = spec.key();
        self.circuits.get_or_compute(
            &key,
            &format!("circuit `{key}`"),
            || spec.build(),
            approx::circuit,
        )
    }

    /// The compiled gate tape for `spec`'s circuit, compiled once per
    /// distinct key — so a campaign compiles each circuit exactly once no
    /// matter how many jobs (or seeds, or backends) touch it.
    ///
    /// # Errors
    ///
    /// As for [`circuit`](Self::circuit).
    pub fn tape(
        &self,
        spec: &CircuitSpec,
        circuit: &Arc<Circuit>,
    ) -> Result<Arc<GateTape>, BatchError> {
        let key = spec.key();
        self.tapes.get_or_compute(
            &key,
            &format!("gate tape of `{key}`"),
            || {
                let tape = GateTape::compile(circuit);
                #[cfg(debug_assertions)]
                subseq_bist::verify::audit_tape(circuit, &tape);
                Ok(tape)
            },
            approx::tape,
        )
    }

    /// The staged compile of `spec`'s circuit under `options`, performed
    /// once per distinct (circuit, pass selection) pair. Reuses the
    /// cached baseline tape as the compile's baseline, so the optimized
    /// and unoptimized jobs of a campaign share one unoptimized tape.
    ///
    /// # Errors
    ///
    /// As for [`circuit`](Self::circuit).
    pub fn compiled(
        &self,
        spec: &CircuitSpec,
        options: CompileOptions,
        circuit: &Arc<Circuit>,
        tape: &Arc<GateTape>,
    ) -> Result<Arc<CompiledCircuit>, BatchError> {
        let key = (spec.key(), options.key());
        let describe = format!("staged compile of `{}` [{}]", spec.key(), options.key());
        self.compiled.get_or_compute(
            &key,
            &describe,
            || {
                let compiled = compile_staged_with_baseline(circuit, options, Arc::clone(tape));
                #[cfg(debug_assertions)]
                subseq_bist::verify::audit_compiled(circuit, &compiled);
                Ok(compiled)
            },
            approx::compiled,
        )
    }

    /// The collapsed fault universe for `spec`'s circuit, computed once
    /// per distinct key.
    ///
    /// # Errors
    ///
    /// As for [`circuit`](Self::circuit).
    pub fn faults(
        &self,
        spec: &CircuitSpec,
        circuit: &Arc<Circuit>,
    ) -> Result<Arc<Vec<Fault>>, BatchError> {
        let key = spec.key();
        self.faults.get_or_compute(
            &key,
            &format!("fault universe of `{key}`"),
            || Ok(collapse(circuit, &fault_universe(circuit)).representatives().to_vec()),
            |f| approx::faults(f),
        )
    }

    /// The generated `T0` (sequence + coverage) for `spec`'s circuit
    /// under `seed` and `tgen`, computed once per distinct
    /// (circuit, seed, config) triple. Reuses the cached collapsed
    /// universe and compiled tape, so the whole campaign collapses and
    /// compiles each circuit once.
    ///
    /// # Errors
    ///
    /// [`BatchError::Artifact`] wrapping the generation failure.
    pub fn generated_t0(
        &self,
        spec: &CircuitSpec,
        seed: u64,
        tgen: &TgenConfig,
        circuit: &Arc<Circuit>,
        faults: &Arc<Vec<Fault>>,
        tape: &Arc<GateTape>,
    ) -> Result<Arc<GeneratedTest>, BatchError> {
        let key = (spec.key(), seed, format!("{tgen:?}"));
        let describe = format!("T0 of `{}` (seed {seed})", spec.key());
        self.t0s.get_or_compute(
            &key,
            &describe,
            || {
                let config = tgen.clone().seed(seed);
                let started = std::time::Instant::now();
                let generated = generate_t0_with_artifacts(
                    circuit,
                    &config,
                    faults.as_ref().clone(),
                    Arc::clone(tape),
                )
                .map_err(BistError::from)?;
                self.t0_seconds
                    .lock()
                    .expect("cache lock poisoned")
                    .insert(key.clone(), started.elapsed().as_secs_f64());
                Ok(generated)
            },
            approx::t0,
        )
    }

    /// Generation seconds of an already-computed `T0`, if any.
    fn t0_generation_seconds(&self, key: &T0Key) -> Option<f64> {
        self.t0_seconds.lock().expect("cache lock poisoned").get(key).copied()
    }

    /// The full artifact bundle for one job, ready for
    /// [`SessionBuilder::with_artifacts`](subseq_bist::SessionBuilder::with_artifacts).
    ///
    /// # Errors
    ///
    /// Any artifact computation failure, as above.
    pub fn artifacts_for(
        &self,
        spec: &CircuitSpec,
        seed: u64,
        tgen: &TgenConfig,
    ) -> Result<SessionArtifacts, BatchError> {
        self.artifacts_for_optimized(spec, seed, tgen, CompileOptions::none())
    }

    /// [`artifacts_for`](Self::artifacts_for) plus, for a non-empty pass
    /// selection, the shared staged compile of the circuit — the bundle
    /// behind a campaign's `--optimize` jobs. With
    /// [`CompileOptions::none`] the staged-compile shelf is never
    /// touched.
    ///
    /// # Errors
    ///
    /// Any artifact computation failure, as above.
    pub fn artifacts_for_optimized(
        &self,
        spec: &CircuitSpec,
        seed: u64,
        tgen: &TgenConfig,
        optimize: CompileOptions,
    ) -> Result<SessionArtifacts, BatchError> {
        let circuit = self.circuit(spec)?;
        let tape = self.tape(spec, &circuit)?;
        let faults = self.faults(spec, &circuit)?;
        let t0 = self.generated_t0(spec, seed, tgen, &circuit, &faults, &tape)?;
        let mut artifacts = SessionArtifacts::new()
            .circuit(Arc::clone(&circuit))
            .tape(Arc::clone(&tape))
            .faults(faults)
            .generated_t0(t0);
        if !optimize.is_none() {
            artifacts = artifacts.compiled(self.compiled(spec, optimize, &circuit, &tape)?);
        }
        let key = (spec.key(), seed, format!("{tgen:?}"));
        if let Some(seconds) = self.t0_generation_seconds(&key) {
            artifacts = artifacts.t0_seconds(seconds);
        }
        Ok(artifacts)
    }

    /// Current residency of every shelf — what the cache holds and
    /// roughly how much memory it pins.
    #[must_use]
    pub fn residency(&self) -> CacheResidency {
        CacheResidency {
            circuits: self.circuits.residency(),
            tapes: self.tapes.residency(),
            compiled: self.compiled.residency(),
            faults: self.faults.residency(),
            t0s: self.t0s.residency(),
        }
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let (circuit_misses, circuit_hits) = self.circuits.counters();
        let (tape_misses, tape_hits) = self.tapes.counters();
        let (compiled_misses, compiled_hits) = self.compiled.counters();
        let (fault_misses, fault_hits) = self.faults.counters();
        let (t0_misses, t0_hits) = self.t0s.counters();
        CacheStats {
            circuit_misses,
            circuit_hits,
            tape_misses,
            tape_hits,
            compiled_misses,
            compiled_hits,
            fault_misses,
            fault_hits,
            t0_misses,
            t0_hits,
        }
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s27_spec() -> CircuitSpec {
        CircuitSpec::Suite("s27".to_string())
    }

    #[test]
    fn artifacts_are_computed_once_and_shared() {
        let cache = ArtifactCache::new();
        let spec = s27_spec();
        let a = cache.circuit(&spec).unwrap();
        let b = cache.circuit(&spec).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let ga = cache.tape(&spec, &a).unwrap();
        let gb = cache.tape(&spec, &a).unwrap();
        assert!(Arc::ptr_eq(&ga, &gb));
        assert_eq!(ga.num_nodes(), a.num_nodes());
        let fa = cache.faults(&spec, &a).unwrap();
        let fb = cache.faults(&spec, &b).unwrap();
        assert!(Arc::ptr_eq(&fa, &fb));
        assert_eq!(fa.len(), 32);
        let tgen = TgenConfig::new().max_length(32);
        let ta = cache.generated_t0(&spec, 7, &tgen, &a, &fa, &ga).unwrap();
        let tb = cache.generated_t0(&spec, 7, &tgen, &a, &fa, &ga).unwrap();
        assert!(Arc::ptr_eq(&ta, &tb));
        // A different seed is a different artifact.
        let tc = cache.generated_t0(&spec, 8, &tgen, &a, &fa, &ga).unwrap();
        assert!(!Arc::ptr_eq(&ta, &tc));
        let stats = cache.stats();
        assert_eq!((stats.circuit_misses, stats.circuit_hits), (1, 1));
        assert_eq!((stats.tape_misses, stats.tape_hits), (1, 1));
        assert_eq!((stats.fault_misses, stats.fault_hits), (1, 1));
        assert_eq!((stats.t0_misses, stats.t0_hits), (2, 1));
        assert!(stats.to_string().contains("tapes"));
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let cache = ArtifactCache::new();
        let spec = s27_spec();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let c = cache.circuit(&spec).unwrap();
                    cache.faults(&spec, &c).unwrap();
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.circuit_misses, 1);
        assert_eq!(stats.circuit_hits, 7);
        assert_eq!(stats.fault_misses, 1);
        assert_eq!(stats.fault_hits, 7);
    }

    #[test]
    fn failed_artifacts_surface_and_stay_failed() {
        let cache = ArtifactCache::new();
        let spec = CircuitSpec::Suite("nope".to_string());
        let err = cache.circuit(&spec).unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
        // The failure is cached too: no recompute, same message.
        let again = cache.circuit(&spec).unwrap_err();
        assert!(again.to_string().contains("nope"));
        assert_eq!(cache.stats().circuit_misses, 1);
    }

    #[test]
    fn failures_are_computed_once_and_counted_as_hits_thereafter() {
        // A circuit that fails to parse: the error itself is the cached
        // artifact. The first request is the one miss (the computation
        // that actually ran and failed); every later request — same
        // thread or racing threads — is served the cached error and
        // counts as a hit, exactly like a successful artifact.
        let cache = ArtifactCache::new();
        let spec = CircuitSpec::File(std::path::PathBuf::from("/definitely/not/here.bench"));
        let first = cache.circuit(&spec).unwrap_err();
        assert!(first.to_string().contains("here.bench"), "{first}");
        for _ in 0..3 {
            let again = cache.circuit(&spec).unwrap_err();
            assert_eq!(again.to_string(), first.to_string(), "cached error is re-served");
        }
        let stats = cache.stats();
        assert_eq!((stats.circuit_misses, stats.circuit_hits), (1, 3));

        // Concurrent requesters of a distinct failing key: still exactly
        // one computation, everyone else hits.
        let bad = CircuitSpec::Suite("still-not-a-circuit".to_string());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let err = cache.circuit(&bad).unwrap_err();
                    assert!(err.to_string().contains("still-not-a-circuit"));
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.circuit_misses, 2, "one miss per distinct failing key");
        assert_eq!(stats.circuit_hits, 3 + 7);

        // The full-bundle path reports the same cached failure and never
        // touches the downstream shelves for a broken circuit.
        let tgen = TgenConfig::new().max_length(16);
        let bundle = cache.artifacts_for(&spec, 1, &tgen).unwrap_err();
        assert!(bundle.to_string().contains("here.bench"));
        let stats = cache.stats();
        assert_eq!((stats.circuit_misses, stats.circuit_hits), (2, 11));
        assert_eq!(stats.tape_misses + stats.tape_hits, 0, "no tape compiled for a failed parse");
        assert_eq!(stats.fault_misses + stats.fault_hits, 0);
        assert_eq!(stats.t0_misses + stats.t0_hits, 0);
    }

    #[test]
    fn staged_compiles_are_keyed_by_pass_selection_and_shared() {
        let cache = ArtifactCache::new();
        let spec = s27_spec();
        let circuit = cache.circuit(&spec).unwrap();
        let tape = cache.tape(&spec, &circuit).unwrap();
        let a = cache.compiled(&spec, CompileOptions::all(), &circuit, &tape).unwrap();
        let b = cache.compiled(&spec, CompileOptions::all(), &circuit, &tape).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // The compile's baseline is the cached unoptimized tape itself.
        assert!(Arc::ptr_eq(a.baseline(), &tape));
        // A different pass selection is a different artifact...
        let none = cache.compiled(&spec, CompileOptions::none(), &circuit, &tape).unwrap();
        assert!(!Arc::ptr_eq(&a, &none));
        // ...and the identity compile shares the baseline tape outright.
        assert!(Arc::ptr_eq(none.tape(), &tape));
        let stats = cache.stats();
        assert_eq!((stats.compiled_misses, stats.compiled_hits), (2, 1));
        assert!(stats.to_string().contains("staged compiles"));
        // An optimized bundle carries the staged compile; a plain bundle
        // never touches the shelf.
        let tgen = TgenConfig::new().max_length(16);
        cache.artifacts_for_optimized(&spec, 3, &tgen, CompileOptions::all()).unwrap();
        assert_eq!(cache.stats().compiled_hits, 2);
        cache.artifacts_for(&spec, 3, &tgen).unwrap();
        assert_eq!(cache.stats().compiled_misses + cache.stats().compiled_hits, 4);
    }

    #[test]
    fn instrumented_cache_mirrors_stats_and_tracks_residency() {
        let registry = Arc::new(bist_obs::Registry::new());
        let cache = ArtifactCache::with_obs(&Obs::with_registry(Arc::clone(&registry)));
        let spec = s27_spec();
        let tgen = TgenConfig::new().max_length(16);
        cache.artifacts_for(&spec, 1, &tgen).unwrap();
        cache.artifacts_for(&spec, 1, &tgen).unwrap();
        let snap = registry.snapshot();
        let stats = cache.stats();
        // The registry counters are an exact mirror of CacheStats.
        assert_eq!(snap.counter("cache.circuit.miss"), Some(stats.circuit_misses as u64));
        assert_eq!(snap.counter("cache.circuit.hit"), Some(stats.circuit_hits as u64));
        assert_eq!(snap.counter("cache.tape.miss"), Some(stats.tape_misses as u64));
        assert_eq!(snap.counter("cache.tape.hit"), Some(stats.tape_hits as u64));
        assert_eq!(snap.counter("cache.t0.miss"), Some(stats.t0_misses as u64));
        // One artifact resident per shelf (same circuit, seed, config).
        let residency = cache.residency();
        assert_eq!(residency.circuits.entries, 1);
        assert_eq!(residency.tapes.entries, 1);
        assert_eq!(residency.faults.entries, 1);
        assert_eq!(residency.t0s.entries, 1);
        assert_eq!(residency.compiled.entries, 0, "no staged compile requested");
        assert!(residency.total_approx_bytes() > 0);
        assert_eq!(snap.gauge("cache.circuit.resident"), Some(1));
        assert_eq!(
            snap.gauge("cache.tape.resident_bytes"),
            Some(residency.tapes.approx_bytes as i64)
        );
        assert!(residency.to_string().contains("resident:"), "{residency}");
        // Cached failures occupy a slot but are not resident artifacts.
        let bad = CircuitSpec::Suite("nope".to_string());
        cache.circuit(&bad).unwrap_err();
        assert_eq!(cache.residency().circuits.entries, 1);
    }

    #[test]
    fn bundle_assembles_everything() {
        let cache = ArtifactCache::new();
        let tgen = TgenConfig::new().max_length(16);
        cache.artifacts_for(&s27_spec(), 3, &tgen).unwrap();
        let stats = cache.stats();
        assert_eq!(
            (stats.circuit_misses, stats.tape_misses, stats.fault_misses, stats.t0_misses),
            (1, 1, 1, 1)
        );
        // A second job over the same circuit compiles nothing new.
        cache.artifacts_for(&s27_spec(), 4, &tgen).unwrap();
        assert_eq!(cache.stats().tape_misses, 1);
        assert_eq!(cache.stats().tape_hits, 1);
    }
}
