//! # bist-batch — the batch campaign engine
//!
//! A layer above the [`Session`](subseq_bist::Session) pipeline for
//! running *many* sessions at once: a declarative [`Campaign`] spec
//! (circuits × backends × scheme configs × seeds) expands into a job
//! matrix that a [`CampaignEngine`] executes concurrently on a
//! scoped-thread worker pool with a bounded job queue, first-error
//! cancellation (configurable `keep_going`) and per-job timing.
//!
//! All jobs share one [`ArtifactCache`]: each circuit is parsed once,
//! its fault universe collapsed once, and each (circuit, seed) `T0`
//! generated once — shared via `Arc` into every session through
//! [`SessionBuilder::with_artifacts`](subseq_bist::SessionBuilder::with_artifacts).
//! Results stream through pluggable [`ReportSink`]s ([`MemorySink`],
//! JSONL via [`JsonlSink`]) and roll up into a [`CampaignSummary`].
//!
//! The `subseq-bist` binary in this crate is the CLI front end
//! (`subseq-bist run --smoke`, `list-circuits`, `validate`).
//!
//! # Example
//!
//! ```
//! use bist_batch::{Campaign, CampaignEngine};
//! use subseq_bist::tgen::TgenConfig;
//! use subseq_bist::Backend;
//!
//! let campaign = Campaign::new()
//!     .suite_circuits(["s27"])
//!     .backends([Backend::Packed, Backend::Sharded { threads: 0, width: 256 }])
//!     .ns(vec![1, 2])
//!     .tgen(TgenConfig::new().max_length(32))
//!     .seeds([1999]);
//! let outcome = CampaignEngine::new().run(&campaign, &mut [])?;
//! assert_eq!(outcome.summary.jobs_ok, 2);
//! assert_eq!(outcome.cache.circuit_misses, 1);   // parsed once, shared
//! println!("{}", outcome.summary);
//! # Ok::<(), bist_batch::BatchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod campaign;
mod engine;
pub mod faultpoint;
pub mod jsonl;
mod report;
pub mod serve;

pub use cache::{
    ArtifactCache, CachePolicy, CacheResidency, CacheStats, ShelfId, ShelfResidency, ShelfSet,
};
pub use campaign::{backend_label, parse_backend, Campaign, CircuitSpec, JobSpec, SchemeSpec};
pub use engine::{
    CampaignEngine, CampaignOutcome, EngineConfig, FailureKind, JobFailure, JobOutcome, RetryPolicy,
};
pub use report::{
    AxisLine, CampaignSummary, JobMetrics, JobRecord, JobStatus, JsonlSink, MemorySink, ReportSink,
    ResumeLog,
};
pub use serve::{campaign_from_spec, CampaignServer, ServeConfig};

use std::fmt;
use subseq_bist::BistError;

/// Any error the batch layer can produce.
#[derive(Debug)]
#[non_exhaustive]
pub enum BatchError {
    /// An underlying pipeline error.
    Bist(BistError),
    /// Reading or writing campaign I/O failed.
    Io(std::io::Error),
    /// The campaign or engine was configured inconsistently.
    Config(String),
    /// Computing a shared artifact failed (the message is shared by every
    /// job that requested it).
    Artifact {
        /// Which artifact (circuit, fault universe, `T0`).
        artifact: String,
        /// The underlying failure.
        message: String,
        /// Whether a retry could plausibly succeed (interrupted/timed-out
        /// I/O, injected chaos). Permanent failures — parse errors,
        /// missing files — stay cached and are never retried.
        transient: bool,
    },
    /// A job failed and `keep_going` was off.
    JobFailed {
        /// Matrix id of the failing job.
        job: usize,
        /// Circuit label of the failing job.
        circuit: String,
        /// The underlying failure.
        message: String,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Bist(e) => write!(f, "pipeline error: {e}"),
            BatchError::Io(e) => write!(f, "i/o error: {e}"),
            BatchError::Config(msg) => write!(f, "campaign configuration error: {msg}"),
            BatchError::Artifact { artifact, message, transient } => {
                let hint = if *transient { " (transient)" } else { "" };
                write!(f, "building shared {artifact} failed{hint}: {message}")
            }
            BatchError::JobFailed { job, circuit, message } => {
                write!(f, "job {job} ({circuit}) failed: {message}")
            }
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Bist(e) => Some(e),
            BatchError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BistError> for BatchError {
    fn from(e: BistError) -> Self {
        BatchError::Bist(e)
    }
}

impl From<std::io::Error> for BatchError {
    fn from(e: std::io::Error) -> Self {
        BatchError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        let e: BatchError = BistError::Config("bad".to_string()).into();
        assert!(e.to_string().contains("bad"));
        let io: BatchError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        let cfg = BatchError::Config("no circuits".to_string());
        assert!(cfg.to_string().contains("no circuits"));
        let art = BatchError::Artifact {
            artifact: "circuit `x`".to_string(),
            message: "parse failed".to_string(),
            transient: false,
        };
        assert!(art.to_string().contains("circuit `x`"));
        let transient = BatchError::Artifact {
            artifact: "T0 of `x`".to_string(),
            message: "interrupted".to_string(),
            transient: true,
        };
        assert!(transient.to_string().contains("(transient)"));
        let job = BatchError::JobFailed {
            job: 3,
            circuit: "s27".to_string(),
            message: "sim".to_string(),
        };
        assert!(job.to_string().contains("job 3"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(cfg.source().is_none());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<BatchError>();
    }
}
