//! Fault-simulation-guided test sequence generation (STRATEGATE
//! substitute).

use crate::{static_compact, RandomSequence, TgenConfig};
use bist_expand::TestSequence;
use bist_netlist::{Circuit, GateTape};
use bist_sim::{
    collapse, fault_universe, Fault, FaultCoverage, FaultSimulator, PackedBackend, SimError,
};
use std::sync::Arc;

/// The result of test generation: the sequence `T0` and its coverage of
/// the collapsed fault universe (with first-detection times `udet`).
#[derive(Debug, Clone)]
pub struct GeneratedTest {
    /// The generated (and compacted) test sequence.
    pub sequence: TestSequence,
    /// Coverage of the collapsed fault universe under
    /// [`sequence`](Self::sequence), including detection times.
    pub coverage: FaultCoverage,
}

impl GeneratedTest {
    /// The detected-fault set `F` of the paper's Procedure 1.
    #[must_use]
    pub fn detected_faults(&self) -> Vec<Fault> {
        self.coverage.detected().map(|(f, _)| f).collect()
    }
}

/// Generates a deterministic test sequence for `circuit`.
///
/// Candidate bursts of hold-biased random vectors are appended to the
/// sequence only if fault simulation shows they detect at least one
/// not-yet-detected fault of the collapsed universe. Generation stops when
/// every fault is detected, the stall limit is reached, or the length cap
/// is hit; the sequence is then statically compacted while preserving the
/// detected set, and finally re-simulated to obtain definitive detection
/// times.
///
/// # Errors
///
/// Propagates simulator errors (these indicate impossible configurations
/// — e.g. a circuit with zero-width vectors — and do not occur for valid
/// circuits).
pub fn generate_t0(circuit: &Circuit, config: &TgenConfig) -> Result<GeneratedTest, SimError> {
    let faults = collapse(circuit, &fault_universe(circuit)).representatives().to_vec();
    generate_t0_with_faults(circuit, config, faults)
}

/// [`generate_t0`] over a caller-supplied collapsed fault universe.
///
/// Callers that already hold the circuit's collapsed representatives (the
/// `Session` pipeline, the batch campaign's artifact cache) pass them in
/// so the universe is collapsed exactly once per circuit. `faults` must be
/// the representatives for `circuit`; detection results are reported in
/// its order. Generation itself always runs on the packed reference
/// engine, so the produced `T0` is independent of any session backend.
///
/// # Errors
///
/// As for [`generate_t0`].
pub fn generate_t0_with_faults(
    circuit: &Circuit,
    config: &TgenConfig,
    faults: Vec<Fault>,
) -> Result<GeneratedTest, SimError> {
    generate_on(&FaultSimulator::new(circuit), config, faults)
}

/// [`generate_t0_with_faults`] over a caller-compiled [`GateTape`].
///
/// Generation fault-simulates every candidate burst, so it is by far the
/// heaviest consumer of the tape: callers that already hold the
/// circuit's compiled tape (a `Session`, the batch campaign's artifact
/// cache) pass it in and the whole generation run compiles nothing.
/// Generation always runs on the packed engine regardless of any session
/// backend, so the produced `T0` stays backend-independent.
///
/// # Errors
///
/// [`SimError::TapeMismatch`] if `tape` does not belong to `circuit`;
/// otherwise as for [`generate_t0`].
pub fn generate_t0_with_artifacts(
    circuit: &Circuit,
    config: &TgenConfig,
    faults: Vec<Fault>,
    tape: Arc<GateTape>,
) -> Result<GeneratedTest, SimError> {
    let sim = FaultSimulator::with_backend_and_tape(circuit, tape, Arc::new(PackedBackend))?;
    generate_on(&sim, config, faults)
}

/// The generation loop itself, over whatever simulator the entry points
/// assembled.
fn generate_on(
    sim: &FaultSimulator<'_>,
    config: &TgenConfig,
    faults: Vec<Fault>,
) -> Result<GeneratedTest, SimError> {
    let circuit = sim.circuit();
    let mut source =
        RandomSequence::new(circuit.num_inputs(), config.hold_probability, config.seed);

    let mut t0: Option<TestSequence> = None;
    let mut remaining: Vec<Fault> = faults.clone();
    let mut stall = 0usize;
    let mut burst_len = config.burst_len;

    while !remaining.is_empty() && stall < config.max_stall {
        let current_len = t0.as_ref().map_or(0, TestSequence::len);
        if current_len >= config.max_length {
            break;
        }
        let burst = source.burst(burst_len.min(config.max_length - current_len));
        let candidate = match &t0 {
            None => burst,
            Some(prefix) => prefix.concat(&burst).expect("same width"),
        };
        let times = sim.detection_times(&candidate, &remaining)?;
        let newly = times.iter().filter(|t| t.is_some()).count();
        if newly > 0 {
            remaining = remaining
                .iter()
                .zip(&times)
                .filter_map(|(&f, &t)| if t.is_none() { Some(f) } else { None })
                .collect();
            // Truncate the useless tail of the burst: nothing after the
            // last new detection contributes (new detections always fall
            // inside the freshly appended burst, so earlier detections are
            // unaffected).
            let last_useful =
                times.iter().flatten().copied().max().expect("newly > 0 implies a time");
            t0 = Some(candidate.subsequence(0, last_useful));
            stall = 0;
        } else {
            stall += 1;
            // Occasionally try longer bursts: deep faults need longer
            // justification sequences.
            if stall.is_multiple_of(10) {
                burst_len = (burst_len * 2).min(128);
            }
        }
    }

    let t0 = match t0 {
        Some(seq) => seq,
        // Degenerate: nothing was ever detected; keep one burst so the
        // contract (nonempty sequence) holds.
        None => source.burst(config.burst_len),
    };

    // Compact while preserving the detected set, then re-simulate for
    // final detection times.
    let detected: Vec<Fault> = {
        let times = sim.detection_times(&t0, &faults)?;
        faults
            .iter()
            .zip(&times)
            .filter_map(|(&f, &t)| if t.is_some() { Some(f) } else { None })
            .collect()
    };
    let compacted = if config.compaction_budget > 0 && !detected.is_empty() {
        static_compact(circuit, &t0, &detected, config.compaction_budget, config.seed)?.sequence
    } else {
        t0
    };
    let coverage = FaultCoverage::simulate(sim, &compacted, faults)?;
    Ok(GeneratedTest { sequence: compacted, coverage })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::benchmarks;
    use bist_netlist::generate::GeneratorSpec;

    #[test]
    fn s27_reaches_full_coverage() {
        let c = benchmarks::s27();
        let t0 = generate_t0(&c, &TgenConfig::new().seed(7)).unwrap();
        // All 32 collapsed faults of s27 are detectable; random generation
        // finds them quickly.
        assert_eq!(t0.coverage.total(), 32);
        assert_eq!(t0.coverage.detected_count(), 32);
        assert!(!t0.sequence.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let c = benchmarks::s27();
        let a = generate_t0(&c, &TgenConfig::new().seed(3)).unwrap();
        let b = generate_t0(&c, &TgenConfig::new().seed(3)).unwrap();
        assert_eq!(a.sequence, b.sequence);
        let d = generate_t0(&c, &TgenConfig::new().seed(4)).unwrap();
        assert!(a.sequence != d.sequence || a.coverage == d.coverage);
    }

    #[test]
    fn respects_length_cap() {
        let c = benchmarks::s27();
        let t0 = generate_t0(&c, &TgenConfig::new().seed(1).max_length(6)).unwrap();
        assert!(t0.sequence.len() <= 6);
    }

    #[test]
    fn covers_synthetic_circuit_reasonably() {
        let c = GeneratorSpec::new("cov")
            .inputs(5)
            .outputs(4)
            .dffs(6)
            .gates(60)
            .seed(2)
            .build()
            .unwrap();
        let t0 = generate_t0(&c, &TgenConfig::new().seed(5)).unwrap();
        assert!(t0.coverage.fraction() > 0.5, "coverage too low: {:.2}", t0.coverage.fraction());
    }

    #[test]
    fn detected_faults_matches_coverage() {
        let c = benchmarks::s27();
        let t0 = generate_t0(&c, &TgenConfig::new().seed(2)).unwrap();
        assert_eq!(t0.detected_faults().len(), t0.coverage.detected_count());
    }

    #[test]
    fn with_injected_tape_matches_self_compiling_path() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let cfg = TgenConfig::new().seed(9);
        let tape = Arc::new(GateTape::compile(&c));
        let a = generate_t0_with_artifacts(&c, &cfg, faults.clone(), Arc::clone(&tape)).unwrap();
        let b = generate_t0(&c, &cfg).unwrap();
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.coverage, b.coverage);
        // A tape from another circuit is a typed error, not a bad T0.
        let alien = Arc::new(GateTape::compile(&benchmarks::shift_register3()));
        assert!(matches!(
            generate_t0_with_artifacts(&c, &cfg, faults, alien),
            Err(SimError::TapeMismatch { .. })
        ));
    }

    #[test]
    fn with_faults_matches_self_collapsing_path() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let cfg = TgenConfig::new().seed(9);
        let a = generate_t0(&c, &cfg).unwrap();
        let b = generate_t0_with_faults(&c, &cfg, faults).unwrap();
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn shift_register_detectable_faults_found() {
        let c = benchmarks::shift_register3();
        let t0 = generate_t0(&c, &TgenConfig::new().seed(11)).unwrap();
        // All faults of the shift register are detectable.
        assert_eq!(t0.coverage.fraction(), 1.0);
    }
}
