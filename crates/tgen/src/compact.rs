//! Static compaction of test sequences by vector omission.
//!
//! Substitute for the vector-restoration compaction of Pomeranz & Reddy
//! \[12\]: vectors are tentatively omitted (in random order) and each
//! omission is kept if the sequence still detects every fault of the
//! target set. Because sequential-circuit fault simulation is the cost
//! driver, the procedure takes an explicit *budget* of trial simulations.

use bist_expand::TestSequence;
use bist_netlist::Circuit;
use bist_sim::{Fault, FaultSimulator, SimError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The outcome of static compaction.
#[derive(Debug, Clone)]
pub struct CompactionStats {
    /// The compacted sequence (detects the whole target set).
    pub sequence: TestSequence,
    /// Length before compaction.
    pub original_len: usize,
    /// Number of vectors removed.
    pub removed: usize,
    /// Number of trial fault simulations spent.
    pub trials: usize,
}

impl CompactionStats {
    /// Fraction of vectors removed.
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.original_len == 0 {
            0.0
        } else {
            self.removed as f64 / self.original_len as f64
        }
    }
}

/// Compacts `sequence` while preserving detection of every fault in
/// `keep`.
///
/// Vectors are tried in random order (seeded); after a successful
/// omission all positions are reconsidered, exactly like the omission loop
/// of the paper's Procedure 2 but with a whole fault set as the criterion.
/// Stops when no further vector can be omitted or `budget` trial
/// simulations have been spent.
///
/// # Errors
///
/// Propagates simulator errors (e.g. width mismatch).
///
/// # Panics
///
/// Panics if `keep` contains a fault the input sequence does not detect —
/// callers must pass the detected set.
pub fn static_compact(
    circuit: &Circuit,
    sequence: &TestSequence,
    keep: &[Fault],
    budget: usize,
    seed: u64,
) -> Result<CompactionStats, SimError> {
    let sim = FaultSimulator::new(circuit);
    let detects_all = |seq: &TestSequence| -> Result<bool, SimError> {
        if seq.is_empty() {
            return Ok(keep.is_empty());
        }
        let times = sim.detection_times(seq, keep)?;
        Ok(times.iter().all(Option::is_some))
    };
    assert!(
        detects_all(sequence)?,
        "static_compact requires the input sequence to detect every kept fault"
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut current = sequence.clone();
    let original_len = sequence.len();
    let mut trials = 0usize;

    'outer: loop {
        if current.len() <= 1 {
            break;
        }
        let mut order: Vec<usize> = (0..current.len()).collect();
        order.shuffle(&mut rng);
        for &u in &order {
            if trials >= budget {
                break 'outer;
            }
            // Positions shift as vectors are removed; clamp.
            if u >= current.len() {
                continue;
            }
            let candidate = current.without(u);
            if candidate.is_empty() {
                continue;
            }
            trials += 1;
            if detects_all(&candidate)? {
                current = candidate;
                // Restart the scan over the shortened sequence.
                continue 'outer;
            }
        }
        break;
    }

    Ok(CompactionStats {
        removed: original_len - current.len(),
        original_len,
        sequence: current,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bist_netlist::benchmarks;
    use bist_sim::{collapse, fault_universe};

    fn seq(s: &str) -> TestSequence {
        s.parse().unwrap()
    }

    fn s27_t0() -> TestSequence {
        seq("0111 1001 0111 1001 0100 1011 1001 0000 0000 1011")
    }

    #[test]
    fn compaction_preserves_coverage() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let stats = static_compact(&c, &s27_t0(), &faults, 200, 1).unwrap();
        let sim = FaultSimulator::new(&c);
        let times = sim.detection_times(&stats.sequence, &faults).unwrap();
        assert!(times.iter().all(Option::is_some), "coverage lost");
        assert!(stats.sequence.len() <= 10);
        assert_eq!(stats.original_len, 10);
        assert_eq!(stats.removed, 10 - stats.sequence.len());
    }

    #[test]
    fn budget_zero_changes_nothing() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let stats = static_compact(&c, &s27_t0(), &faults, 0, 1).unwrap();
        assert_eq!(stats.sequence, s27_t0());
        assert_eq!(stats.trials, 0);
    }

    #[test]
    fn empty_keep_set_compacts_to_one_vector() {
        let c = benchmarks::s27();
        let stats = static_compact(&c, &s27_t0(), &[], 100, 1).unwrap();
        assert_eq!(stats.sequence.len(), 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        let a = static_compact(&c, &s27_t0(), &faults, 200, 5).unwrap();
        let b = static_compact(&c, &s27_t0(), &faults, 200, 5).unwrap();
        assert_eq!(a.sequence, b.sequence);
    }

    #[test]
    #[should_panic(expected = "detect every kept fault")]
    fn undetected_keep_fault_panics() {
        let c = benchmarks::s27();
        let faults = collapse(&c, &fault_universe(&c)).representatives().to_vec();
        // A single vector cannot detect everything.
        let _ = static_compact(&c, &seq("0000"), &faults, 10, 1);
    }

    #[test]
    fn reduction_statistic() {
        let stats = CompactionStats { sequence: seq("01"), original_len: 4, removed: 3, trials: 9 };
        assert!((stats.reduction() - 0.75).abs() < 1e-12);
    }
}
