/// Configuration for [`generate_t0`](crate::generate_t0) (builder-style).
#[derive(Debug, Clone, PartialEq)]
pub struct TgenConfig {
    pub(crate) seed: u64,
    pub(crate) burst_len: usize,
    pub(crate) max_stall: usize,
    pub(crate) hold_probability: f64,
    pub(crate) max_length: usize,
    pub(crate) compaction_budget: usize,
}

impl TgenConfig {
    /// Defaults: seed 0, bursts of 8 vectors, stop after 40 consecutive
    /// useless bursts, 30% hold probability, length cap 4096, compaction
    /// budget 400 trial simulations.
    #[must_use]
    pub fn new() -> Self {
        TgenConfig {
            seed: 0,
            burst_len: 8,
            max_stall: 40,
            hold_probability: 0.3,
            max_length: 4096,
            compaction_budget: 400,
        }
    }

    /// RNG seed — generation is fully deterministic per seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of vectors per candidate burst (≥ 1).
    #[must_use]
    pub fn burst_len(mut self, n: usize) -> Self {
        self.burst_len = n.max(1);
        self
    }

    /// Consecutive useless bursts tolerated before giving up.
    #[must_use]
    pub fn max_stall(mut self, n: usize) -> Self {
        self.max_stall = n.max(1);
        self
    }

    /// Probability of repeating the previous vector instead of drawing a
    /// fresh random one (the "hold" heuristic of Nachman et al. \[3\];
    /// clamped to `[0, 1)`).
    #[must_use]
    pub fn hold_probability(mut self, p: f64) -> Self {
        self.hold_probability = p.clamp(0.0, 0.999);
        self
    }

    /// Hard cap on the generated sequence length.
    #[must_use]
    pub fn max_length(mut self, n: usize) -> Self {
        self.max_length = n.max(1);
        self
    }

    /// Maximum number of trial fault simulations spent in static
    /// compaction (0 disables compaction).
    #[must_use]
    pub fn compaction_budget(mut self, n: usize) -> Self {
        self.compaction_budget = n;
        self
    }
}

impl Default for TgenConfig {
    fn default() -> Self {
        TgenConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TgenConfig::new();
        assert!(c.burst_len >= 1);
        assert!(c.max_stall >= 1);
        assert!((0.0..1.0).contains(&c.hold_probability));
        assert_eq!(TgenConfig::default(), c);
    }

    #[test]
    fn builders_clamp() {
        let c = TgenConfig::new().burst_len(0).max_stall(0).hold_probability(2.0);
        assert_eq!(c.burst_len, 1);
        assert_eq!(c.max_stall, 1);
        assert!(c.hold_probability < 1.0);
    }
}
