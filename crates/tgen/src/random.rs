//! Pseudo-random stimulus sources.

use bist_expand::{TestSequence, TestVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Fibonacci linear-feedback shift register over 64 bits.
///
/// Used by the LFSR-with-hold baseline (the on-chip generator of Nachman
/// et al. \[3\] that the paper compares against conceptually) and as a
/// deterministic bit source in tests.
///
/// # Example
///
/// ```
/// use bist_tgen::Lfsr;
///
/// let mut l = Lfsr::new(0xACE1);
/// let a: Vec<bool> = (0..8).map(|_| l.next_bit()).collect();
/// let mut l2 = Lfsr::new(0xACE1);
/// let b: Vec<bool> = (0..8).map(|_| l2.next_bit()).collect();
/// assert_eq!(a, b);   // deterministic per seed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u64,
}

impl Lfsr {
    /// Creates an LFSR; a zero seed is mapped to a fixed nonzero state
    /// (the all-zero state is a fixed point).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Lfsr { state: if seed == 0 { 0x1d87_2b41_c0ff_ee11 } else { seed } }
    }

    /// Produces the next output bit (taps 64, 63, 61, 60 — a maximal
    /// length polynomial for width 64).
    pub fn next_bit(&mut self) -> bool {
        let s = self.state;
        let bit = (s ^ (s >> 1) ^ (s >> 3) ^ (s >> 4)) & 1;
        self.state = (s >> 1) | (bit << 63);
        bit == 1
    }

    /// Produces the next `width`-bit test vector.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    pub fn next_vector(&mut self, width: usize) -> TestVector {
        TestVector::from_fn(width, |_| self.next_bit())
    }

    /// Produces a sequence of `len` vectors of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `len` is 0.
    pub fn sequence(&mut self, width: usize, len: usize) -> TestSequence {
        assert!(len > 0, "sequence length must be positive");
        let mut s = TestSequence::new(width);
        for _ in 0..len {
            s.push(self.next_vector(width)).expect("fixed width");
        }
        s
    }
}

/// A random-vector source with a *hold* option: with probability
/// `hold_probability` the previous vector is repeated instead of drawing a
/// fresh one. Holding inputs for several cycles helps sequential circuits
/// traverse state space (the observation of \[3\] that the paper builds
/// on).
#[derive(Debug, Clone)]
pub struct RandomSequence {
    rng: StdRng,
    width: usize,
    hold_probability: f64,
    last: Option<TestVector>,
}

impl RandomSequence {
    /// Creates a source of `width`-bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0.
    #[must_use]
    pub fn new(width: usize, hold_probability: f64, seed: u64) -> Self {
        assert!(width > 0, "vector width must be positive");
        RandomSequence {
            rng: StdRng::seed_from_u64(seed),
            width,
            hold_probability: hold_probability.clamp(0.0, 0.999),
            last: None,
        }
    }

    /// Draws the next vector.
    pub fn next_vector(&mut self) -> TestVector {
        if let Some(last) = &self.last {
            if self.rng.gen_bool(self.hold_probability) {
                return last.clone();
            }
        }
        let width = self.width;
        let v = TestVector::from_fn(width, |_| self.rng.gen_bool(0.5));
        self.last = Some(v.clone());
        v
    }

    /// Draws a burst of `len` vectors.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0.
    pub fn burst(&mut self, len: usize) -> TestSequence {
        assert!(len > 0, "burst length must be positive");
        let mut s = TestSequence::new(self.width);
        for _ in 0..len {
            s.push(self.next_vector()).expect("fixed width");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_is_deterministic_and_nonconstant() {
        let mut a = Lfsr::new(42);
        let mut b = Lfsr::new(42);
        let sa = a.sequence(5, 20);
        let sb = b.sequence(5, 20);
        assert_eq!(sa, sb);
        // Not all vectors identical.
        assert!(sa.iter().any(|v| v != &sa[0]));
    }

    #[test]
    fn lfsr_zero_seed_is_fixed_up() {
        let mut l = Lfsr::new(0);
        let s = l.sequence(8, 10);
        assert!(s.iter().any(|v| v.count_ones() > 0));
    }

    #[test]
    fn lfsr_has_long_period() {
        let mut l = Lfsr::new(7);
        let first = l.next_vector(16);
        // The state should not return to the start immediately.
        assert_ne!(l.next_vector(16), first);
        let mut l2 = Lfsr::new(7);
        let s0 = l2.clone();
        let mut cycles = 0;
        for _ in 0..10_000 {
            l2.next_bit();
            cycles += 1;
            if l2 == s0 {
                break;
            }
        }
        assert_eq!(cycles, 10_000, "period > 10k");
    }

    #[test]
    fn random_sequence_holds() {
        let mut src = RandomSequence::new(6, 0.95, 3);
        let burst = src.burst(50);
        let repeats = burst.vectors().windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 25, "hold probability should produce many repeats, got {repeats}");
    }

    #[test]
    fn random_sequence_no_hold() {
        let mut src = RandomSequence::new(16, 0.0, 3);
        let burst = src.burst(50);
        let repeats = burst.vectors().windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats <= 2, "unexpected repeats without hold: {repeats}");
    }

    #[test]
    fn random_sequence_deterministic() {
        let mut a = RandomSequence::new(4, 0.3, 9);
        let mut b = RandomSequence::new(4, 0.3, 9);
        assert_eq!(a.burst(30), b.burst(30));
    }
}
