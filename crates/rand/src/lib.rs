//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the `rand 0.8` API its code actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] helpers
//! (`gen`, `gen_bool`, `gen_range`) and [`seq::SliceRandom`]
//! (`choose`, `shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the real
//! `StdRng` (ChaCha12), so streams differ from upstream `rand`, but every
//! consumer in this workspace only relies on *determinism per seed*, never
//! on specific stream values. Dropping the real crate back in is a
//! one-line `Cargo.toml` change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a deterministic RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Maps a 64-bit word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable with a standard uniform distribution (the `rand`
/// `Standard` distribution, collapsed to a trait).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draws one element uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u8);

/// The named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 256-bit generator (xoshiro256++ under the hood;
    /// upstream `rand` uses ChaCha12 — see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as the xoshiro authors
            // recommend for state initialization.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::RngCore;

    /// Random selection and permutation over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Permutes the slice uniformly in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va, (0..16).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2usize..=5);
            assert!((2..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_full_width_inclusive_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        // Would panic with arithmetic overflow in debug builds if the
        // span computation were not wrapping.
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(0usize..=usize::MAX);
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..32).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "32 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn choose_is_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [7u8];
        assert_eq!(one.choose(&mut rng), Some(&7));
    }
}
